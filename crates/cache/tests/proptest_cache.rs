//! Property tests over arbitrary cache operation sequences:
//! capacity is never exceeded, accounting identities hold, and dirty data
//! is conserved (every dirtied block is eventually flushed, written back
//! on eviction, or still dirty at quiesce).

use buffer_cache::{BlockCache, CacheConfig, WritePolicy};
use proptest::prelude::*;
use sim_core::units::KB;
use sim_core::SimTime;

#[derive(Debug, Clone)]
enum Op {
    Read { pid: u32, file: u32, offset: u64, len: u64 },
    Write { pid: u32, file: u32, offset: u64, len: u64 },
    Flush { budget: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..4, 1u32..5, 0u64..512 * 1024, 1u64..64 * 1024)
            .prop_map(|(pid, file, offset, len)| Op::Read { pid, file, offset, len }),
        (1u32..4, 1u32..5, 0u64..512 * 1024, 1u64..64 * 1024)
            .prop_map(|(pid, file, offset, len)| Op::Write { pid, file, offset, len }),
        (1u64..128 * 1024).prop_map(|budget| Op::Flush { budget }),
    ]
}

fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (
        prop::sample::select(vec![16u64 * KB, 64 * KB, 256 * KB]),
        prop::sample::select(vec![4u64 * KB, 8 * KB]),
        any::<bool>(),
        prop::sample::select(vec![0u8, 1, 2]),
        prop::option::of(1u64..16),
    )
        .prop_map(|(capacity, block_size, read_ahead, wp, cap)| CacheConfig {
            capacity,
            block_size,
            read_ahead,
            write_policy: match wp {
                0 => WritePolicy::WriteThrough,
                1 => WritePolicy::WriteBehind,
                _ => WritePolicy::sprite(),
            },
            per_process_cap_blocks: cap,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cache_invariants_hold_under_arbitrary_ops(
        config in arb_config(),
        ops in proptest::collection::vec(arb_op(), 1..300),
    ) {
        let bs = config.block_size;
        let mut cache = BlockCache::new(config.clone());
        let mut now = SimTime::ZERO;
        let mut dirtied_blocks: u64 = 0;
        let mut flushed_bytes: u64 = 0;
        let mut writeback_bytes: u64 = 0;

        for op in &ops {
            now += sim_core::SimDuration::from_millis(50);
            match *op {
                Op::Read { pid, file, offset, len } => {
                    let out = cache.read(now, pid, file, offset, len);
                    writeback_bytes += out.writebacks.iter().map(|r| r.length).sum::<u64>();
                    // Each fetch range is block aligned and nonempty.
                    for f in out.fetches.iter().chain(out.prefetch.iter()) {
                        prop_assert_eq!(f.offset % bs, 0);
                        prop_assert_eq!(f.length % bs, 0);
                        prop_assert!(f.length > 0);
                    }
                    prop_assert!(out.readahead_hit_blocks <= out.hit_blocks);
                }
                Op::Write { pid, file, offset, len } => {
                    let out = cache.write(now, pid, file, offset, len);
                    dirtied_blocks += out.dirtied_blocks;
                    writeback_bytes += out.writebacks.iter().map(|r| r.length).sum::<u64>();
                    match config.write_policy {
                        WritePolicy::WriteThrough => {
                            prop_assert_eq!(out.dirtied_blocks, 0);
                            prop_assert!(!out.write_through.is_empty());
                        }
                        _ => prop_assert!(out.write_through.is_empty()),
                    }
                }
                Op::Flush { budget } => {
                    let batch = cache.take_flush_batch(now, budget);
                    let bytes: u64 = batch.iter().map(|r| r.length).sum();
                    prop_assert!(bytes <= budget.max(bs));
                    flushed_bytes += bytes;
                }
            }
            prop_assert!(
                cache.resident_blocks() <= config.capacity_blocks(),
                "capacity exceeded: {} > {}",
                cache.resident_blocks(),
                config.capacity_blocks()
            );
            cache.stats().check_invariants();
        }

        // Quiesce: drain everything and check dirty-data conservation.
        let final_flush: u64 = cache.flush_all().iter().map(|r| r.length).sum();
        flushed_bytes += final_flush;
        prop_assert_eq!(cache.dirty_bytes(), 0);
        prop_assert_eq!(
            dirtied_blocks * bs,
            flushed_bytes + writeback_bytes,
            "every dirtied block must be flushed or written back exactly once"
        );

        // Device write accounting matches what the cache reported.
        let stats = cache.stats();
        let wt_bytes = match config.write_policy {
            WritePolicy::WriteThrough => stats.device_bytes_written,
            _ => flushed_bytes + writeback_bytes,
        };
        prop_assert_eq!(stats.device_bytes_written, wt_bytes);
    }

    #[test]
    fn per_process_cap_is_respected_after_every_op(
        ops in proptest::collection::vec(arb_op(), 1..200),
        cap in 2u64..8,
    ) {
        let config = CacheConfig {
            capacity: 256 * KB,
            block_size: 4 * KB,
            read_ahead: false,
            write_policy: WritePolicy::WriteBehind,
            per_process_cap_blocks: Some(cap),
        };
        let mut cache = BlockCache::new(config);
        let mut now = SimTime::ZERO;
        for op in &ops {
            now += sim_core::SimDuration::from_millis(10);
            match *op {
                Op::Read { pid, file, offset, len } => {
                    cache.read(now, pid, file, offset, len % (cap * 4 * KB) + 1);
                    let _ = (file, offset);
                }
                Op::Write { pid, file, offset, len } => {
                    cache.write(now, pid, file, offset, len % (cap * 4 * KB) + 1);
                }
                Op::Flush { budget } => {
                    cache.take_flush_batch(now, budget);
                }
            }
            // With single-request sizes under the cap, no process may hold
            // more than `cap` blocks after its request completes.
            prop_assert!(cache.resident_blocks() <= 3 * cap + 3);
        }
    }
}
