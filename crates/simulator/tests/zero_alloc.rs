//! The steady-state request path must not touch the heap.
//!
//! Methodology: run two simulations that are identical except for trace
//! length under a counting global allocator and difference the counts.
//! Setup and teardown allocations (cache slab, event-queue buckets,
//! scratch outcomes growing to their working size) are the same in both
//! runs and cancel; what remains is the marginal cost of the extra
//! simulated I/Os. With the `_into` cache API, the timing wheel's
//! recycled buckets, and the engine's owned scratch buffers that margin
//! is zero — the assertion leaves a whisker of slack only for the
//! `RateSeries` bins doubling a couple more times in the longer run.
//!
//! A second phase repeats the measurement with `obs` span recording
//! enabled: the flight recorder writes into pre-allocated ring slots and
//! drops on overflow, so profiling must not reintroduce allocations.

use iosim::{SimConfig, Simulation};
use iotrace::{Direction, IoEvent, Synchrony, Trace};
use sim_core::units::{KB, MB};
use sim_core::{SimDuration, SimTime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A cache-straining mixed workload: a reader cycling through a working
/// set larger than the cache (misses, evictions, read-ahead) and a
/// synchronous writer (dirty blocks, write-behind flushing).
fn mixed_traces(n: u64) -> (Trace, Trace) {
    let gap = SimDuration::from_millis(1);
    let mut reader = Trace::new();
    let mut wall = SimTime::ZERO;
    for i in 0..n {
        wall += gap;
        // 16 MB working set over an 8 MB cache: constant churn.
        let offset = (i % 256) * 64 * KB;
        reader.push(IoEvent::logical(Direction::Read, 1, 1, offset, 64 * KB, wall, gap));
    }
    let mut writer = Trace::new();
    let mut wall = SimTime::ZERO;
    for i in 0..n {
        wall += gap;
        let mut e =
            IoEvent::logical(Direction::Write, 2, 1, (i % 512) * 64 * KB, 64 * KB, wall, gap);
        e.sync = Synchrony::Sync;
        writer.push(e);
    }
    (reader, writer)
}

fn run(reader: &Trace, writer: &Trace) {
    let mut sim = Simulation::new(SimConfig::buffered(8 * MB));
    sim.add_process(1, "reader", reader).expect("valid process");
    sim.add_process(2, "writer", writer).expect("valid process");
    let report = sim.run();
    assert!(report.wall_end > SimTime::ZERO);
}

#[test]
fn steady_state_request_path_allocates_nothing() {
    const SMALL: u64 = 2_000;
    const BIG: u64 = 10_000;
    // Build both workloads up front so trace construction stays out of
    // the differenced window.
    let (small_r, small_w) = mixed_traces(SMALL);
    let (big_r, big_w) = mixed_traces(BIG);

    // Warm-up run: fault in lazy runtime structures (thread-local
    // buffers, stdio) so they don't skew the small run.
    run(&small_r, &small_w);

    let a0 = allocs();
    run(&small_r, &small_w);
    let a1 = allocs();
    run(&big_r, &big_w);
    let a2 = allocs();

    let small_allocs = a1 - a0;
    let big_allocs = a2 - a1;
    let extra_events = 2 * (BIG - SMALL);
    let extra_allocs = big_allocs.saturating_sub(small_allocs);
    let per_event = extra_allocs as f64 / extra_events as f64;
    assert!(
        per_event < 0.01,
        "steady state must be allocation-free: {extra_allocs} extra allocations over \
         {extra_events} extra events ({per_event:.4}/event; small run {small_allocs}, \
         big run {big_allocs})"
    );

    // Phase 2, same fn (the allocator counter and the obs flag are
    // process-global — a second #[test] would race): span recording on.
    // Each run registers the same two process tracks (those allocations
    // cancel in the differencing) and emits spans into the fixed-slot
    // ring, which drops when full rather than growing — so recording
    // must also be allocation-free per event.
    obs::init(1 << 16);
    obs::set_enabled(true);
    run(&small_r, &small_w);

    let b0 = allocs();
    run(&small_r, &small_w);
    let b1 = allocs();
    run(&big_r, &big_w);
    let b2 = allocs();
    obs::set_enabled(false);

    let extra_allocs_obs = (b2 - b1).saturating_sub(b1 - b0);
    let per_event_obs = extra_allocs_obs as f64 / extra_events as f64;
    assert!(
        per_event_obs < 0.01,
        "span recording must be allocation-free: {extra_allocs_obs} extra allocations over \
         {extra_events} extra events ({per_event_obs:.4}/event; small run {}, big run {})",
        b1 - b0,
        b2 - b1
    );

    // Phase 3: timeline sampling on (1 ms grid — every run commits its
    // full 4096-sample budget and then truncates arithmetically). Series
    // storage is preallocated at start() and the gauge gather reads
    // device state without mutating, so sampling must also add no
    // per-event allocations. Setup costs (the per-run series vectors,
    // interned disk names, the published TimelineData) are identical in
    // the small and big runs and cancel in the differencing.
    std::env::set_var("MILLER_TIMELINE", "1000000");
    run(&small_r, &small_w);

    let c0 = allocs();
    run(&small_r, &small_w);
    let c1 = allocs();
    run(&big_r, &big_w);
    let c2 = allocs();
    std::env::remove_var("MILLER_TIMELINE");
    assert!(!obs::timeline::drain().is_empty(), "sampling actually ran");

    let extra_allocs_tl = (c2 - c1).saturating_sub(c1 - c0);
    let per_event_tl = extra_allocs_tl as f64 / extra_events as f64;
    assert!(
        per_event_tl < 0.01,
        "timeline sampling must be allocation-free: {extra_allocs_tl} extra allocations over \
         {extra_events} extra events ({per_event_tl:.4}/event; small run {}, big run {})",
        c1 - c0,
        c2 - c1
    );
}
