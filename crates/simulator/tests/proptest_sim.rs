//! Property tests for the simulator: time conservation, determinism, and
//! write conservation hold for arbitrary well-formed trace mixes.

use iosim::{SimConfig, Simulation};
use iotrace::{Direction, IoEvent, Synchrony, Trace};
use proptest::prelude::*;
use sim_core::units::KB;
use sim_core::{SimDuration, SimTime};

#[derive(Debug, Clone)]
struct ProcPlan {
    n_ios: u64,
    io_size: u64,
    gap_ms: u64,
    write_fraction: u8, // percent
    async_io: bool,
    file_count: u32,
}

fn arb_plan() -> impl Strategy<Value = ProcPlan> {
    (
        1u64..80,
        prop::sample::select(vec![4u64 * KB, 64 * KB, 100_000, 256 * KB]),
        0u64..10,
        0u8..=100,
        any::<bool>(),
        1u32..4,
    )
        .prop_map(|(n_ios, io_size, gap_ms, write_fraction, async_io, file_count)| ProcPlan {
            n_ios,
            io_size,
            gap_ms,
            write_fraction,
            async_io,
            file_count,
        })
}

fn build_trace(pid: u32, plan: &ProcPlan) -> Trace {
    let mut t = Trace::new();
    let mut wall = SimTime::ZERO;
    for i in 0..plan.n_ios {
        let gap = SimDuration::from_millis(plan.gap_ms.max(1));
        wall += gap;
        let dir = if (i * 100 / plan.n_ios.max(1)) < plan.write_fraction as u64 {
            Direction::Write
        } else {
            Direction::Read
        };
        let file = 1 + (i as u32 % plan.file_count);
        let mut e = IoEvent::logical(
            dir,
            pid,
            file,
            (i / plan.file_count as u64) * plan.io_size,
            plan.io_size,
            wall,
            gap,
        );
        if plan.async_io {
            e.sync = Synchrony::Async;
        }
        t.push(e);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conservation_and_determinism(
        plans in proptest::collection::vec(arb_plan(), 1..4),
        cache_mb in prop::sample::select(vec![1u64, 4, 16]),
        cached in any::<bool>(),
    ) {
        let run = || {
            let config = if cached {
                SimConfig::buffered(cache_mb * 1024 * 1024)
            } else {
                SimConfig::uncached()
            };
            let mut sim = Simulation::new(config);
            for (i, plan) in plans.iter().enumerate() {
                let pid = (i + 1) as u32;
                sim.add_process(pid, format!("p{pid}"), &build_trace(pid, plan)).expect("valid process");
            }
            sim.run()
        };
        let a = run();
        a.check_time_conservation();
        let b = run();
        prop_assert_eq!(a.wall_end, b.wall_end);
        prop_assert_eq!(a.cpu_busy, b.cpu_busy);
        prop_assert_eq!(a.disk_totals.total_bytes(), b.disk_totals.total_bytes());

        // Write conservation: every logically-written byte reaches the
        // disks by quiesce (flush, writeback, or write-through).
        let logical_writes: u64 = plans
            .iter()
            .enumerate()
            .map(|(i, p)| {
                build_trace((i + 1) as u32, p)
                    .events()
                    .filter(|e| e.dir == Direction::Write)
                    .map(|e| e.length)
                    .sum::<u64>()
            })
            .sum();
        if cached {
            // Block-granular rounding can only round *up*.
            prop_assert!(
                a.disk_totals.bytes_written >= logical_writes,
                "disk writes {} < logical writes {}",
                a.disk_totals.bytes_written,
                logical_writes
            );
        } else {
            prop_assert_eq!(a.disk_totals.bytes_written, logical_writes);
        }

        // Utilization is a fraction.
        prop_assert!(a.utilization() <= 1.0 + 1e-9);

        // Every process finished and issued all its I/Os.
        for (i, plan) in plans.iter().enumerate() {
            prop_assert_eq!(a.processes[i].ios_issued, plan.n_ios);
        }
    }

    #[test]
    fn caching_never_reads_more_than_uncached(
        plan in arb_plan(),
    ) {
        // Demand misses + prefetch can re-read, but an uncached run reads
        // every request from disk; a cached run's *demand* traffic must
        // not exceed total logical reads by more than block rounding +
        // prefetch of one request ahead.
        let trace = build_trace(1, &plan);
        let logical_reads: u64 = trace
            .events()
            .filter(|e| e.dir == Direction::Read)
            .map(|e| e.length)
            .sum();
        let mut sim = Simulation::new(SimConfig::buffered(16 * 1024 * 1024));
        sim.add_process(1, "p", &trace).expect("valid process");
        let r = sim.run();
        let slack = (plan.n_ios + 2) * (plan.io_size + 8 * KB);
        prop_assert!(
            r.disk_totals.bytes_read <= logical_reads + slack,
            "cached read traffic {} wildly exceeds logical {}",
            r.disk_totals.bytes_read,
            logical_reads
        );
    }
}
