//! The sharded engine's headline contract: the report is a pure
//! function of the simulated cluster, never of the shard count. These
//! tests pin it bytewise — `serde_json::to_string(&ClusterReport)` must
//! be identical at shard counts {1, 2, 3, 7, 16} for arbitrary
//! well-formed workload mixes — plus the nastiest epoch alignment: a
//! barrier landing exactly on a timing-wheel level boundary.

use iosim::{DeviceSpec, ShardedConfig, ShardedSimulation, SimConfig, SHARED_FILE_BIT};
use iotrace::{Direction, IoEvent, Synchrony, Trace};
use proptest::prelude::*;
use sim_core::units::KB;
use sim_core::{SimDuration, SimTime};
use storage_model::{DiskParams, NvmeParams, TieredParams};

/// The device farms the invariance contract covers: the paper's
/// no-queueing disk (`None`), FIFO and elevator queueing disks, the
/// NVMe multi-queue flash device, and the tiered hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
enum DeviceKind {
    Paper,
    QueueingFifo,
    Elevator,
    Nvme,
    Tiered,
}

impl DeviceKind {
    fn spec(self) -> Option<DeviceSpec> {
        match self {
            DeviceKind::Paper => None,
            DeviceKind::QueueingFifo => Some(DeviceSpec::Disk(DiskParams::ymp_with_queueing())),
            DeviceKind::Elevator => Some(DeviceSpec::Disk(DiskParams::ymp_with_elevator())),
            DeviceKind::Nvme => Some(DeviceSpec::Nvme(NvmeParams::modern_2026())),
            DeviceKind::Tiered => Some(DeviceSpec::Tiered(TieredParams::modern_2026())),
        }
    }
}

#[derive(Debug, Clone)]
struct ProcPlan {
    n_ios: u64,
    io_size: u64,
    gap_ms: u64,
    write_fraction: u8, // percent
    async_io: bool,
    shared_file: bool,
}

fn arb_plan() -> impl Strategy<Value = ProcPlan> {
    (
        1u64..40,
        prop::sample::select(vec![4u64 * KB, 64 * KB, 100_000]),
        0u64..8,
        0u8..=100,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(n_ios, io_size, gap_ms, write_fraction, async_io, shared_file)| ProcPlan {
            n_ios,
            io_size,
            gap_ms,
            write_fraction,
            async_io,
            shared_file,
        })
}

fn build_trace(pid: u32, plan: &ProcPlan) -> Trace {
    let mut t = Trace::new();
    let mut wall = SimTime::ZERO;
    for i in 0..plan.n_ios {
        let gap = SimDuration::from_millis(plan.gap_ms.max(1));
        wall += gap;
        // Shared-file traffic must stay read-only here: writes through
        // the remote path bypass the owner's cache by design, and this
        // test only cares about schedule invariance.
        let dir = if !plan.shared_file
            && (i * 100 / plan.n_ios.max(1)) < plan.write_fraction as u64
        {
            Direction::Write
        } else {
            Direction::Read
        };
        let file = if plan.shared_file { SHARED_FILE_BIT | (pid % 4) } else { 1 + pid % 3 };
        let mut e =
            IoEvent::logical(dir, pid, file, i * plan.io_size, plan.io_size, wall, gap);
        if plan.async_io {
            e.sync = Synchrony::Async;
        }
        t.push(e);
    }
    t
}

fn run_cluster(
    groups: usize,
    plans: &[ProcPlan],
    max_active: Option<usize>,
    epoch: SimDuration,
    shards: usize,
) -> String {
    run_cluster_on(groups, plans, max_active, epoch, shards, DeviceKind::Paper)
}

fn run_cluster_on(
    groups: usize,
    plans: &[ProcPlan],
    max_active: Option<usize>,
    epoch: SimDuration,
    shards: usize,
    device: DeviceKind,
) -> String {
    let mut base = SimConfig::buffered(4 * 1024 * 1024);
    base.devices = device.spec();
    let mut cfg = ShardedConfig::new(groups, base);
    cfg.epoch = epoch;
    cfg.max_active = max_active;
    let mut cluster = ShardedSimulation::new(cfg);
    for (i, plan) in plans.iter().enumerate() {
        let pid = (i + 1) as u32;
        cluster
            .add_process(i % groups, pid, format!("p{pid}"), &build_trace(pid, plan))
            .expect("valid process");
    }
    serde_json::to_string(&cluster.run(shards)).expect("serialize")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn report_is_bytewise_shard_count_invariant(
        plans in proptest::collection::vec(arb_plan(), 1..10),
        groups in 1usize..6,
        epoch_ms in prop::sample::select(vec![50u64, 250, 1000]),
        cap in prop::option::of(1usize..6),
    ) {
        let epoch = SimDuration::from_millis(epoch_ms);
        let baseline = run_cluster(groups, &plans, cap, epoch, 1);
        for shards in [2usize, 3, 7, 16] {
            let alt = run_cluster(groups, &plans, cap, epoch, shards);
            prop_assert_eq!(
                &baseline, &alt,
                "report diverged between 1 and {} shards", shards
            );
        }
    }

    #[test]
    fn queue_aware_devices_are_shard_count_invariant(
        plans in proptest::collection::vec(arb_plan(), 1..8),
        groups in 1usize..5,
        device in prop::sample::select(vec![
            DeviceKind::QueueingFifo,
            DeviceKind::Elevator,
            DeviceKind::Nvme,
            DeviceKind::Tiered,
        ]),
    ) {
        let epoch = SimDuration::from_millis(250);
        let baseline = run_cluster_on(groups, &plans, Some(4), epoch, 1, device);
        for shards in [2usize, 7] {
            let alt = run_cluster_on(groups, &plans, Some(4), epoch, shards, device);
            prop_assert_eq!(
                &baseline, &alt,
                "{:?} report diverged between 1 and {} shards", device, shards
            );
        }
    }
}

/// The timing wheel cascades at level boundaries (64^2 = 4096 ticks
/// between level-1 rollovers). Park the epoch barrier exactly on that
/// boundary and give processes tick-exact gaps (1024, 2048, 4096 —
/// some landing *on* barrier ticks, some straddling them) — if barrier
/// handling ever interacted with a cascade (popping a boundary event
/// on one side at one shard count and the other side at another), this
/// is where it would show.
#[test]
fn epoch_on_wheel_level_boundary_is_invariant() {
    let epoch = SimDuration::from_ticks(4096);
    let run = |shards: usize| {
        let mut cfg = ShardedConfig::new(4, SimConfig::buffered(4 * 1024 * 1024));
        cfg.epoch = epoch;
        cfg.max_active = Some(5);
        let mut cluster = ShardedSimulation::new(cfg);
        for (i, gap_ticks) in [512u64, 1024, 2048, 4096, 4096, 3000, 4095, 4097]
            .into_iter()
            .enumerate()
        {
            let pid = (i + 1) as u32;
            let mut t = Trace::new();
            let mut wall = SimTime::ZERO;
            for j in 0..30u64 {
                let gap = SimDuration::from_ticks(gap_ticks);
                wall += gap;
                let dir = if j % 5 == 0 { Direction::Write } else { Direction::Read };
                let file = if i % 3 == 0 { SHARED_FILE_BIT | (pid % 4) } else { 1 + pid % 3 };
                let mut e =
                    IoEvent::logical(dir, pid, file, j * 64 * KB, 64 * KB, wall, gap);
                if i % 2 == 0 {
                    e.sync = Synchrony::Async;
                }
                t.push(e);
            }
            cluster.add_process(i % 4, pid, format!("p{pid}"), &t).expect("valid process");
        }
        serde_json::to_string(&cluster.run(shards)).expect("serialize")
    };
    let baseline = run(1);
    for shards in [2usize, 3, 4] {
        assert_eq!(baseline, run(shards), "wheel-boundary epoch diverged at {shards} shards");
    }
}
