//! The discrete-event engine tying scheduler, cache, and disks together.
//!
//! Timing semantics, matching §6.1's description of the original:
//!
//! * One CPU. A dispatched process runs for `min(quantum, remaining
//!   compute)`; a context switch is charged per dispatch. When its
//!   compute gap drains, the process issues its next traced request,
//!   paying the file-system-code and interrupt-service CPU overheads.
//! * A **synchronous** request blocks the process until every implied
//!   demand device operation completes (misses, dirty-eviction
//!   writebacks, write-throughs, plus waits for still-in-flight
//!   read-ahead covering the requested blocks). **Asynchronous** requests
//!   (les) never block; their device work proceeds in the background.
//! * Read-ahead fetches and write-behind flushes run in the background.
//!   Flushing is serialized per disk — one flusher stream per spindle —
//!   which is what makes an undersized cache fill with dirty blocks and
//!   stall its writers (§6.2).
//! * Disks default to the paper's no-queueing model; per-disk FIFO
//!   queueing is available as an ablation.
//!
//! File ids are namespaced per process (`pid << 16 | file`), so two
//! copies of venus never share cached data — the paper's Figure 6–8 runs
//! use "two identical venus programs … not sharing data sets" (§6.3).

use crate::config::SimConfig;
use crate::metrics::{ProcessMetrics, SimReport};
use crate::process::{EventSource, ProcState, ProcessFeed, ProcessState};
use buffer_cache::{BlockCache, ByteRange, ReadOutcome, WriteOutcome};
use iotrace::{Direction, IoEvent, Synchrony, Trace};
use rustc_hash::FxHashMap;
use sim_core::{EventQueue, RateSeries, SimDuration, SimTime};
use storage_model::{AccessKind, AnyDevice, BlockDevice};
use std::collections::VecDeque;
use std::sync::Arc;

/// Why a process could not be added to a [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddProcessError {
    /// The pid does not fit the 16-bit namespacing width.
    PidTooWide(u32),
    /// A process with this pid is already registered.
    DuplicatePid(u32),
    /// A trace event's file id does not fit below the pid namespace bits.
    FileIdTooWide {
        /// The offending process.
        pid: u32,
        /// The out-of-range file id.
        file_id: u32,
    },
    /// The target partition does not exist (sharded runs only; see
    /// [`crate::sharded::ShardedSimulation::add_process`]).
    UnknownGroup(usize),
}

impl std::fmt::Display for AddProcessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            AddProcessError::PidTooWide(pid) => {
                write!(f, "pid {pid} exceeds the 16-bit namespacing width")
            }
            AddProcessError::DuplicatePid(pid) => write!(f, "duplicate pid {pid}"),
            AddProcessError::FileIdTooWide { pid, file_id } => {
                write!(f, "pid {pid}: file id {file_id} exceeds the 16-bit namespacing width")
            }
            AddProcessError::UnknownGroup(group) => {
                write!(f, "group {group} does not exist in this sharded simulation")
            }
        }
    }
}

impl std::error::Error for AddProcessError {}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// The running process's CPU slice ends.
    SliceDone { slot: usize },
    /// A blocked process's I/O completes.
    IoDone { slot: usize },
    /// A flusher stream finishes its current device write.
    FlushDone { disk: usize },
    /// Delayed-write aging timer.
    FlushTimer,
}

/// Raw (pre-namespacing) file ids with this bit set belong to the
/// cluster-wide **shared** namespace: in a sharded run the request is
/// routed to the owning partition instead of the local cache/disks. The
/// bit sits below the pid tag, so it survives the `pid << 16` remap.
pub const SHARED_FILE_BIT: u32 = 0x8000;

/// A cross-partition message emitted by one group's engine, serviced by
/// the sharded coordinator at the next epoch barrier.
#[derive(Debug, Clone, Copy)]
pub(crate) enum OutMsg {
    /// A process finished; the global admission scheduler may start a
    /// parked one.
    Done,
    /// A request against a shared file, to be serviced by the owning
    /// group's disks.
    RemoteIo {
        /// Requester's process slot (for the completion callback).
        slot: usize,
        /// Shared-namespace file id (pid tag stripped).
        file_id: u32,
        offset: u64,
        length: u64,
        kind: AccessKind,
        /// Synchronous requests parked the process; it needs a
        /// [`Simulation::complete_remote`] reply.
        sync: bool,
    },
}

/// An [`OutMsg`] stamped for the deterministic cross-group merge: the
/// coordinator sorts by `(time, seq, group)`, where `seq` is this
/// engine's per-run monotonic message counter.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Stamped {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) msg: OutMsg,
}

/// Per-file placement on the disk farm.
#[derive(Debug, Clone, Copy)]
struct Placement {
    disk: usize,
    base: u64,
}

/// An in-flight background fetch: blocks `first..=last` of `file` whose
/// data arrives at `ready`. Kept in a small list of DISJOINT ranges —
/// re-marking trims older overlapping entries first — so probing a
/// request span is a scan of the few in-flight fetches instead of a
/// hash-map operation per block.
#[derive(Debug, Clone, Copy)]
struct PendingRange {
    file: u32,
    first: u64,
    last: u64,
    ready: SimTime,
}

/// The simulator. Construct, [`Simulation::add_process`], then
/// [`Simulation::run`].
pub struct Simulation {
    config: SimConfig,
    procs: Vec<ProcessState>,
    ready: VecDeque<usize>,
    /// CPUs currently free (the paper models 1; §2.2's n+1 experiments
    /// use more).
    free_cpus: usize,
    /// Per process slot: compute consumed by its pending SliceDone, plus
    /// whether the slice ends in an I/O issue. Indexed by slot (dense:
    /// one entry per process), set at dispatch and taken at SliceDone.
    slice_info: Vec<Option<(SimDuration, bool)>>,
    queue: EventQueue<Ev>,
    cache: Option<BlockCache>,
    disks: Vec<AnyDevice>,
    placements: FxHashMap<u32, Placement>,
    next_file_slot: Vec<u64>,
    /// How many 256 MB file slots fit on one device; placement wraps so
    /// file bases never exceed the device capacity.
    slots_per_disk: u64,
    /// Blocks fetched by read-ahead or async demand whose data is still
    /// in flight, as disjoint ranges. Expired entries are purged lazily
    /// on probe.
    pending: Vec<PendingRange>,
    flush_busy: Vec<bool>,
    flush_queues: Vec<VecDeque<ByteRange>>,
    /// Running total of ranges across all `flush_queues`, maintained on
    /// push/pop so the refill loop does not re-sum every queue per
    /// iteration.
    flush_queued: usize,
    flush_timer_armed: bool,
    /// Processes in [`ProcState::Done`], maintained so the run loop's
    /// completion check is O(1) instead of a per-event scan.
    done: usize,
    /// Cache block size (or 4096 when uncached), copied out of the
    /// config so the per-request block-span math skips the Option probe.
    block_size: u64,
    /// Scratch outcomes and flush batch reused across requests; after
    /// warm-up the request path performs no heap allocation.
    read_scratch: ReadOutcome,
    write_scratch: WriteOutcome,
    flush_batch_buf: Vec<ByteRange>,
    // metrics
    busy: SimDuration,
    overhead: SimDuration,
    logical_series: RateSeries,
    disk_read_series: RateSeries,
    disk_write_series: RateSeries,
    wall_end: SimTime,
    // observability: counters are collected unconditionally (cheap,
    // deterministic); span tracks are registered only when profiling is
    // enabled and the vectors stay empty otherwise.
    sched_obs: obs::SchedCounters,
    was_idle: bool,
    proc_tracks: Vec<obs::Track>,
    disk_tracks: Vec<obs::Track>,
    // Sharded-run state. `cluster` routes shared-file requests to the
    // outbox; `halted` latches the run-loop stop condition so a chunked
    // advance stops exactly where `run` would (admissions and remote
    // completions un-latch it).
    started: bool,
    halted: bool,
    cluster: bool,
    outbox: Vec<Stamped>,
    msg_seq: u64,
    // Temporal telemetry: a deterministic periodic gauge sampler, enabled
    // by `--timeline`/`MILLER_TIMELINE`. Samples are taken between event
    // pops (state is constant there), never through the event queue —
    // wheel stats are part of the report, so a timer event would perturb
    // results. Boxed: ~all runs leave it `None`.
    timeline: Option<Box<obs::timeline::Timeline>>,
    /// Previous cumulative busy ticks per disk, differenced into a
    /// windowed busy fraction at each gather.
    timeline_prev_busy: Vec<u64>,
    /// Tick of the previous gather (the busy-fraction window start).
    timeline_last_gather: u64,
}

impl Simulation {
    /// Build an empty simulation for `config`.
    pub fn new(config: SimConfig) -> Simulation {
        config.validate();
        let cache = config.cache.clone().map(BlockCache::new);
        let block_size = cache.as_ref().map(|c| c.config().block_size).unwrap_or(4096);
        let disks = (0..config.n_disks).map(|i| config.build_device(i)).collect();
        let slots_per_disk = (config.device_capacity() / (256 * sim_core::units::MB)).max(1);
        Simulation {
            cache,
            disks,
            slots_per_disk,
            procs: Vec::new(),
            ready: VecDeque::new(),
            free_cpus: config.n_cpus,
            slice_info: Vec::new(),
            queue: EventQueue::new(),
            placements: FxHashMap::default(),
            next_file_slot: vec![0; config.n_disks],
            pending: Vec::new(),
            flush_busy: vec![false; config.n_disks],
            flush_queues: (0..config.n_disks).map(|_| VecDeque::new()).collect(),
            flush_queued: 0,
            flush_timer_armed: false,
            done: 0,
            block_size,
            read_scratch: ReadOutcome::default(),
            write_scratch: WriteOutcome::default(),
            flush_batch_buf: Vec::new(),
            busy: SimDuration::ZERO,
            overhead: SimDuration::ZERO,
            logical_series: RateSeries::new(config.series_bin),
            disk_read_series: RateSeries::new(config.series_bin),
            disk_write_series: RateSeries::new(config.series_bin),
            wall_end: SimTime::ZERO,
            sched_obs: obs::SchedCounters::default(),
            was_idle: false,
            proc_tracks: Vec::new(),
            disk_tracks: Vec::new(),
            started: false,
            halted: false,
            cluster: false,
            outbox: Vec::new(),
            msg_seq: 0,
            timeline: None,
            timeline_prev_busy: Vec::new(),
            timeline_last_gather: 0,
            config,
        }
    }

    /// Add a process replaying `trace`. File ids are namespaced by the
    /// given `pid`, which must be unique and < 65536 (as must the trace's
    /// file ids). Copies the trace's events once; for the zero-copy path
    /// shared across sweep points use [`Simulation::add_process_shared`].
    ///
    /// # Errors
    ///
    /// * [`AddProcessError::PidTooWide`] — `pid` does not fit the 16-bit
    ///   namespace (`pid >= 65536`).
    /// * [`AddProcessError::DuplicatePid`] — a process with this pid was
    ///   already added; admitting it would collide after the
    ///   `file_id |= pid << 16` namespacing and silently share cache
    ///   blocks.
    /// * [`AddProcessError::FileIdTooWide`] — some event's `file_id`
    ///   overlaps the pid tag bits (`file_id >= 65536`).
    ///
    /// On error the simulation is unchanged; no partial process is
    /// registered.
    pub fn add_process(
        &mut self,
        pid: u32,
        name: impl Into<String>,
        trace: &Trace,
    ) -> Result<(), AddProcessError> {
        self.add_process_shared(pid, name, trace.events().copied().collect())
    }

    /// Add a process replaying a shared, immutable event slice — the
    /// zero-copy path. The slice is validated but never copied or
    /// remapped up front; the pid/file-id namespacing
    /// (`file_id |= pid << 16`) is applied per event during replay, so
    /// one `Arc<[IoEvent]>` can back any number of processes and
    /// concurrent simulations.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulation::add_process`]: `PidTooWide`,
    /// `DuplicatePid`, or `FileIdTooWide`, with the simulation left
    /// unchanged.
    pub fn add_process_shared(
        &mut self,
        pid: u32,
        name: impl Into<String>,
        events: Arc<[IoEvent]>,
    ) -> Result<(), AddProcessError> {
        self.add_process_feed(pid, name, ProcessFeed::Shared(events))
    }

    /// Add a process replaying a streaming [`EventSource`] — the
    /// bounded-memory path. Only the source's current decode block is
    /// ever resident; replay order (and therefore every report byte) is
    /// identical to feeding the same trace through
    /// [`Simulation::add_process_shared`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulation::add_process`]; the file-id check
    /// uses the source's index-backed [`EventSource::max_file_id`] bound
    /// rather than decoding the stream.
    pub fn add_process_streamed(
        &mut self,
        pid: u32,
        name: impl Into<String>,
        source: Box<dyn EventSource>,
    ) -> Result<(), AddProcessError> {
        self.add_process_feed(pid, name, ProcessFeed::Streamed(source))
    }

    /// Shared validation + registration behind both feed kinds.
    pub fn add_process_feed(
        &mut self,
        pid: u32,
        name: impl Into<String>,
        feed: ProcessFeed,
    ) -> Result<(), AddProcessError> {
        if pid >= 1 << 16 {
            return Err(AddProcessError::PidTooWide(pid));
        }
        if self.procs.iter().any(|p| p.pid == pid) {
            return Err(AddProcessError::DuplicatePid(pid));
        }
        if let Some(file_id) = feed.oversized_file_id() {
            return Err(AddProcessError::FileIdTooWide { pid, file_id });
        }
        self.procs.push(ProcessState::from_feed(pid, name, feed));
        Ok(())
    }

    fn placement(&mut self, file: u32) -> Placement {
        if let Some(p) = self.placements.get(&file) {
            return *p;
        }
        let disk = (file as usize) % self.config.n_disks;
        // 256 MB slots: generous for every traced file; seek distances
        // between files on a shared disk stay meaningful. Slots wrap at
        // the device capacity so a farm hosting more files than slots
        // overlays them instead of addressing past the end.
        let base =
            (self.next_file_slot[disk] % self.slots_per_disk) * 256 * sim_core::units::MB;
        self.next_file_slot[disk] += 1;
        let p = Placement { disk, base };
        self.placements.insert(file, p);
        p
    }

    /// Issue one device request at an absolute address, wrapping an
    /// address that would overrun the device (large files overflowing
    /// their 256 MB slot) back into range.
    fn device_access(
        &mut self,
        now: SimTime,
        disk: usize,
        kind: AccessKind,
        addr: u64,
        length: u64,
    ) -> SimDuration {
        let cap = self.disks[disk].capacity();
        let addr = if addr.saturating_add(length) > cap {
            addr % cap.saturating_sub(length).max(1)
        } else {
            addr
        };
        self.disks[disk].access(now, kind, addr, length)
    }

    fn device_op(
        &mut self,
        now: SimTime,
        kind: AccessKind,
        file: u32,
        offset: u64,
        length: u64,
    ) -> SimDuration {
        let p = self.placement(file);
        let d = self.device_access(now, p.disk, kind, p.base + offset, length);
        match kind {
            AccessKind::Read => self.disk_read_series.add(now, length as f64),
            AccessKind::Write => self.disk_write_series.add(now, length as f64),
        }
        if let Some(&t) = self.disk_tracks.get(p.disk) {
            let name = match kind {
                AccessKind::Read => "disk_read",
                AccessKind::Write => "disk_write",
            };
            obs::complete(t, name, now.ticks(), d.ticks(), Some(length));
        }
        d
    }

    fn block_span(&self, offset: u64, length: u64) -> (u64, u64) {
        let bs = self.block_size;
        if length == 0 {
            return (offset / bs, offset / bs);
        }
        (offset / bs, (offset + length - 1) / bs)
    }

    /// Wait required for still-in-flight read-ahead data covering the
    /// range. Expired entries met along the way are dropped — they can
    /// never contribute a wait again.
    fn pending_wait(&mut self, now: SimTime, file: u32, offset: u64, length: u64) -> SimDuration {
        if self.pending.is_empty() {
            return SimDuration::ZERO;
        }
        let (first, last) = self.block_span(offset, length);
        let mut wait = SimDuration::ZERO;
        let mut i = 0;
        while i < self.pending.len() {
            let e = self.pending[i];
            if e.ready <= now {
                self.pending.swap_remove(i);
                continue;
            }
            if e.file == file && e.first <= last && first <= e.last {
                wait = wait.max(e.ready.saturating_since(now));
            }
            i += 1;
        }
        wait
    }

    fn mark_pending(&mut self, file: u32, offset: u64, length: u64, ready: SimTime) {
        let (first, last) = self.block_span(offset, length);
        // Trim the new span out of any older overlapping entries (the
        // new mark overrides block-for-block, like the per-block map this
        // replaces), keeping the list disjoint.
        let mut i = 0;
        while i < self.pending.len() {
            let e = self.pending[i];
            if e.file == file && e.first <= last && first <= e.last {
                let left = (e.first < first).then(|| PendingRange {
                    file,
                    first: e.first,
                    last: first - 1,
                    ready: e.ready,
                });
                let right = (e.last > last).then(|| PendingRange {
                    file,
                    first: last + 1,
                    last: e.last,
                    ready: e.ready,
                });
                match (left, right) {
                    (Some(l), Some(r)) => {
                        self.pending[i] = l;
                        self.pending.push(r);
                        i += 1;
                    }
                    (Some(part), None) | (None, Some(part)) => {
                        self.pending[i] = part;
                        i += 1;
                    }
                    (None, None) => {
                        self.pending.swap_remove(i);
                    }
                }
            } else {
                i += 1;
            }
        }
        self.pending.push(PendingRange { file, first, last, ready });
    }

    /// Divide a trace compute gap by the configured CPU-speed factor
    /// (identity in the paper-faithful `cpu_speedup == 1` mode).
    #[inline]
    fn scale_compute(&mut self, slot: usize) {
        let s = self.config.cpu_speedup;
        if s > 1 {
            let p = &mut self.procs[slot];
            p.compute_remaining = SimDuration::from_ticks(p.compute_remaining.ticks() / s);
        }
    }

    /// Dispatch ready processes onto free CPUs.
    fn dispatch(&mut self, now: SimTime) {
        while self.free_cpus > 0 {
            if !self.dispatch_one(now) {
                break;
            }
        }
    }

    /// Start one ready process; false when the ready queue is empty.
    fn dispatch_one(&mut self, now: SimTime) -> bool {
        let Some(slot) = self.ready.pop_front() else { return false };
        let quantum = self.config.sched.quantum;
        let (compute, completing) = {
            let p = &mut self.procs[slot];
            debug_assert_eq!(p.state, ProcState::Ready);
            p.state = ProcState::Running;
            if p.compute_remaining > quantum {
                (quantum, false)
            } else {
                (p.compute_remaining, true)
            }
        };
        // Per-request CPU cost: FS code + interrupt service, plus the SSD
        // tier's copy penalty. SSD transfers do NOT suspend the process
        // (§3: "I/Os to and from the SSD are done without suspending the
        // process"), so the 1 µs/KB cost is charged as busy CPU here, not
        // as blocking time.
        let tier_penalty = if completing && self.cache.is_some() {
            self.procs[slot]
                .next_event()
                .map(|e| self.config.tier.access_penalty(e.length))
                .unwrap_or(SimDuration::ZERO)
        } else {
            SimDuration::ZERO
        };
        let per_io =
            self.config.sched.fs_overhead + self.config.sched.interrupt_service + tier_penalty;
        let mut slice = self.config.sched.ctx_switch + compute;
        if completing {
            slice += per_io;
        }
        self.procs[slot].cpu_used += compute + if completing { per_io } else { SimDuration::ZERO };
        self.busy += slice;
        self.overhead += self.config.sched.ctx_switch
            + if completing { per_io } else { SimDuration::ZERO };
        self.free_cpus -= 1;
        self.slice_info[slot] = Some((compute, completing));
        self.sched_obs.context_switches += 1;
        if let Some(&t) = self.proc_tracks.get(slot) {
            let name = if completing { "run+io" } else { "run" };
            obs::complete(t, name, now.ticks(), slice.ticks(), None);
        }
        self.queue.schedule(now + slice, Ev::SliceDone { slot });
        true
    }

    fn finish_process(&mut self, slot: usize, now: SimTime) {
        let p = &mut self.procs[slot];
        debug_assert_ne!(p.state, ProcState::Done);
        p.state = ProcState::Done;
        p.finished_at = now;
        self.done += 1;
        self.wall_end = self.wall_end.max(now);
        if self.cluster {
            // Tell the global admission scheduler a seat opened up.
            let seq = self.msg_seq;
            self.msg_seq += 1;
            self.outbox.push(Stamped { time: now, seq, msg: OutMsg::Done });
        }
    }

    /// Handle the request the process has just reached. Returns the
    /// blocking latency for a synchronous request.
    fn service_request(&mut self, now: SimTime, ev: &IoEvent) -> SimDuration {
        self.logical_series.add(now, ev.length as f64);
        // Wait for any in-flight read-ahead covering this range. (The SSD
        // tier's copy penalty is charged as CPU at dispatch, not here.)
        let mut block = self.pending_wait(now, ev.file_id, ev.offset, ev.length);

        if self.cache.is_none() {
            let kind = if ev.dir == Direction::Read { AccessKind::Read } else { AccessKind::Write };
            return block + self.device_op(now, kind, ev.file_id, ev.offset, ev.length);
        }

        // The outcome scratch is moved out of `self` for the duration of
        // the borrow-heavy device loops, then put back with its (possibly
        // grown) capacity — the steady state allocates nothing.
        match ev.dir {
            Direction::Read => {
                let mut out = std::mem::take(&mut self.read_scratch);
                self.cache
                    .as_mut()
                    .expect("checked above")
                    .read_into(now, ev.process_id, ev.file_id, ev.offset, ev.length, &mut out);
                for wb in &out.writebacks {
                    block += self.device_op(now, AccessKind::Write, wb.file_id, wb.offset, wb.length);
                }
                for f in &out.fetches {
                    block += self.device_op(now, AccessKind::Read, f.file_id, f.offset, f.length);
                }
                // Read-ahead proceeds in the background after the demand
                // fetch; the process does not wait for it.
                let pf_start = now + block;
                for pf in &out.prefetch {
                    let d = self.device_op(now, AccessKind::Read, pf.file_id, pf.offset, pf.length);
                    self.mark_pending(pf.file_id, pf.offset, pf.length, pf_start + d);
                }
                self.read_scratch = out;
            }
            Direction::Write => {
                let mut out = std::mem::take(&mut self.write_scratch);
                self.cache
                    .as_mut()
                    .expect("checked above")
                    .write_into(now, ev.process_id, ev.file_id, ev.offset, ev.length, &mut out);
                for wb in &out.writebacks {
                    block += self.device_op(now, AccessKind::Write, wb.file_id, wb.offset, wb.length);
                }
                for wt in &out.write_through {
                    block += self.device_op(now, AccessKind::Write, wt.file_id, wt.offset, wt.length);
                }
                self.write_scratch = out;
                self.kick_flushers(now);
            }
        }
        block
    }

    /// Pull flushable dirty data and keep every disk's flusher stream
    /// busy.
    fn kick_flushers(&mut self, now: SimTime) {
        let Some(cache) = self.cache.as_mut() else { return };
        // Refill per-disk queues while ready dirty data exists and some
        // queue is short. The batch buffer is owned by the simulation and
        // reused across calls.
        let mut batch = std::mem::take(&mut self.flush_batch_buf);
        while cache.has_flushable(now) && self.flush_queued < 4 * self.config.n_disks {
            batch.clear();
            cache.take_flush_batch_into(now, self.config.flush_batch, &mut batch);
            if batch.is_empty() {
                break;
            }
            for r in batch.drain(..) {
                let disk = (r.file_id as usize) % self.config.n_disks;
                self.flush_queues[disk].push_back(r);
                self.flush_queued += 1;
            }
        }
        batch.clear();
        self.flush_batch_buf = batch;
        // Arm the aging timer for delayed writes.
        if let Some(cache) = self.cache.as_ref() {
            if !self.flush_timer_armed {
                if let Some(t) = cache.next_flush_ready() {
                    if t > now {
                        self.flush_timer_armed = true;
                        self.queue.schedule(t, Ev::FlushTimer);
                    }
                }
            }
        }
        for disk in 0..self.config.n_disks {
            self.start_flush(disk, now);
        }
    }

    fn start_flush(&mut self, disk: usize, now: SimTime) {
        if self.flush_busy[disk] {
            return;
        }
        let Some(r) = self.flush_queues[disk].pop_front() else { return };
        self.flush_queued -= 1;
        let d = self.device_op(now, AccessKind::Write, r.file_id, r.offset, r.length);
        self.flush_busy[disk] = true;
        self.queue.schedule(now + d, Ev::FlushDone { disk });
    }

    fn all_done(&self) -> bool {
        self.done == self.procs.len()
    }

    /// Run to completion and report.
    pub fn run(mut self) -> SimReport {
        self.start();
        // The hot loop stays on the plain `pop` path; chunked sharded
        // advancement uses [`Simulation::advance_until`] instead.
        while let Some((now, ev)) = self.queue.pop() {
            if self.timeline_due(now) {
                self.sample_timeline(now);
            }
            if self.handle_event(now, ev) {
                // Processes finished; any remaining flush traffic is
                // accounted in `finalize` without extending the run.
                break;
            }
        }
        if let Some(tl) = self.take_timeline() {
            obs::timeline::publish(tl);
        }
        self.finalize()
    }

    /// Whether a gauge sample is owed at or before `now`. Kept trivially
    /// inlinable so the run loop pays one branch when timelines are off.
    #[inline(always)]
    fn timeline_due(&self, now: SimTime) -> bool {
        match &self.timeline {
            Some(tl) => tl.due(now.ticks()),
            None => false,
        }
    }

    /// Gather every gauge into the timeline scratch row and commit all
    /// grid points up to `now`. Called between event pops, where no state
    /// changes — repeating the row across a gap is exact, not an
    /// approximation. Read-only and allocation-free by construction.
    #[cold]
    fn sample_timeline(&mut self, now: SimTime) {
        let Some(mut tl) = self.timeline.take() else { return };
        let now_tick = now.ticks();
        let (resident, dirty) = self
            .cache
            .as_ref()
            .map(|c| (c.resident_blocks(), c.dirty_bytes()))
            .unwrap_or((0, 0));
        tl.scratch[0] = resident;
        tl.scratch[1] = dirty;
        tl.scratch[2] = self.queue.len() as u64;
        let running = (self.config.n_cpus - self.free_cpus) as u64;
        tl.scratch[3] = self.ready.len() as u64 + running;
        tl.scratch[4] =
            self.procs.iter().filter(|p| p.state == ProcState::Blocked).count() as u64;
        let window = now_tick.saturating_sub(self.timeline_last_gather).max(1);
        let mut promotions = 0;
        for (i, d) in self.disks.iter().enumerate() {
            let g = d.gauges(now);
            promotions += g.tier_promotions;
            tl.scratch[6 + 2 * i] = g.queue_depth;
            let busy = g.busy.ticks();
            let delta = busy.saturating_sub(self.timeline_prev_busy[i]);
            self.timeline_prev_busy[i] = busy;
            tl.scratch[7 + 2 * i] = (delta * 1000 / window).min(1000);
        }
        tl.scratch[5] = promotions;
        self.timeline_last_gather = now_tick;
        tl.commit_until(now_tick);
        self.timeline = Some(tl);
    }

    /// Take the finished timeline (if sampling was enabled), committing
    /// any grid points left between the last event and the wall-clock
    /// end. Called just before [`Simulation::finalize`] — single-node
    /// runs publish the result directly, the sharded coordinator merges
    /// per-group timelines first.
    pub(crate) fn take_timeline(&mut self) -> Option<obs::timeline::TimelineData> {
        if self.timeline.is_some() {
            let end = self.wall_end;
            self.sample_timeline(end);
        }
        let end_tick = self.wall_end.ticks();
        self.timeline.take().map(|tl| tl.finish(end_tick))
    }

    /// Register observability tracks, seed the ready queue, and dispatch
    /// the first slices at time zero. Called once, by [`Simulation::run`]
    /// or by the sharded coordinator before its first epoch.
    pub(crate) fn start(&mut self) {
        debug_assert!(!self.started, "start() called twice");
        self.started = true;
        let mut gauge_track = None;
        if obs::enabled() {
            // One Perfetto row per simulated process and per disk. A
            // monotonic id keeps the rows of concurrent simulations (e.g.
            // sweep points) distinguishable.
            let sim_id = obs::next_sim_id();
            self.proc_tracks = self
                .procs
                .iter()
                .map(|p| obs::register_track(obs::Domain::Sim, format!("sim{sim_id}:{}", p.name)))
                .collect();
            self.disk_tracks = (0..self.config.n_disks)
                .map(|i| obs::register_track(obs::Domain::Sim, format!("sim{sim_id}:disk{i}")))
                .collect();
            gauge_track =
                Some(obs::register_track(obs::Domain::Sim, format!("sim{sim_id}:gauges")));
        }
        if let Some(interval) = obs::timeline::configured_interval_ticks() {
            let mut tl = Box::new(obs::timeline::Timeline::new(interval));
            // Fixed series order; `sample_timeline` fills `scratch` by
            // the same indices.
            tl.add_series("cache_resident_blocks");
            tl.add_series("cache_dirty_bytes");
            tl.add_series("wheel_len");
            tl.add_series("procs_runnable");
            tl.add_series("procs_blocked");
            tl.add_series("tier_promotions");
            for i in 0..self.config.n_disks {
                tl.add_series(obs::timeline::intern_name(&format!("disk{i}_depth")));
                tl.add_series(obs::timeline::intern_name(&format!("disk{i}_busy_permille")));
            }
            if let Some(track) = gauge_track {
                tl.set_track(track);
            }
            self.timeline = Some(tl);
            self.timeline_prev_busy = vec![0; self.config.n_disks];
        }
        self.slice_info.resize(self.procs.len(), None);
        for slot in 0..self.procs.len() {
            self.scale_compute(slot);
            if self.procs[slot].state == ProcState::Ready {
                self.ready.push_back(slot);
            } else {
                // Born-done (empty trace).
                self.procs[slot].state = ProcState::Done;
                self.done += 1;
            }
        }
        self.dispatch(SimTime::ZERO);
    }

    /// Process one popped event. Returns `true` when the run-loop stop
    /// condition holds: every process done, every CPU free, nothing
    /// runnable (remaining flush traffic is accounted at finalize).
    #[inline]
    fn handle_event(&mut self, now: SimTime, ev: Ev) -> bool {
        match ev {
            Ev::SliceDone { slot } => {
                self.free_cpus += 1;
                let (compute, completing) = self.slice_info[slot]
                    .take()
                    .expect("slice info set at dispatch");
                let p = &mut self.procs[slot];
                p.compute_remaining -= compute;
                if !completing {
                    p.state = ProcState::Ready;
                    self.ready.push_back(slot);
                } else {
                    let ev = self.procs[slot].advance();
                    self.scale_compute(slot);
                    if self.cluster && ev.file_id & SHARED_FILE_BIT != 0 {
                        self.remote_issue(now, slot, &ev);
                    } else {
                        let block = self.service_request(now, &ev);
                        let p = &mut self.procs[slot];
                        if ev.sync == Synchrony::Sync && !block.is_zero() {
                            p.state = ProcState::Blocked;
                            p.blocked_since = now;
                            self.sched_obs.sync_blocks += 1;
                            if let Some(&t) = self.proc_tracks.get(slot) {
                                obs::complete(
                                    t,
                                    "io_wait",
                                    now.ticks(),
                                    block.ticks(),
                                    Some(ev.length),
                                );
                            }
                            self.queue.schedule(now + block, Ev::IoDone { slot });
                        } else {
                            // Async request or a full cache hit: mark any
                            // fetched data pending and continue.
                            if ev.sync == Synchrony::Async && !block.is_zero() {
                                self.mark_pending(ev.file_id, ev.offset, ev.length, now + block);
                            }
                            if self.procs[slot].exhausted() {
                                self.finish_process(slot, now);
                            } else {
                                let p = &mut self.procs[slot];
                                p.state = ProcState::Ready;
                                self.ready.push_back(slot);
                            }
                        }
                    }
                }
                self.dispatch(now);
            }
            Ev::IoDone { slot } => {
                let p = &mut self.procs[slot];
                debug_assert_eq!(p.state, ProcState::Blocked);
                p.blocked_time += now.saturating_since(p.blocked_since);
                if p.exhausted() {
                    self.finish_process(slot, now);
                } else {
                    p.state = ProcState::Ready;
                    self.ready.push_back(slot);
                }
                self.dispatch(now);
            }
            Ev::FlushDone { disk } => {
                self.flush_busy[disk] = false;
                if !self.all_done() {
                    self.kick_flushers(now);
                } else {
                    self.start_flush(disk, now);
                }
            }
            Ev::FlushTimer => {
                self.flush_timer_armed = false;
                self.kick_flushers(now);
            }
        }
        // §6.2 stall signature: every CPU idle with nothing runnable
        // while work remains (processes blocked on the disks).
        let idle = self.free_cpus == self.config.n_cpus
            && self.ready.is_empty()
            && !self.all_done();
        if idle && !self.was_idle {
            self.sched_obs.idle_transitions += 1;
        }
        self.was_idle = idle;
        self.all_done() && self.free_cpus == self.config.n_cpus && self.ready.is_empty()
    }

    /// A shared-file request in a sharded run: stamp it into the outbox
    /// for the owning group instead of touching the local cache/disks. A
    /// synchronous requester parks until the coordinator's barrier-time
    /// [`Simulation::complete_remote`] reply; an asynchronous one carries
    /// on immediately (the owner's disks still see the traffic).
    fn remote_issue(&mut self, now: SimTime, slot: usize, ev: &IoEvent) {
        self.logical_series.add(now, ev.length as f64);
        let kind =
            if ev.dir == Direction::Read { AccessKind::Read } else { AccessKind::Write };
        let sync = ev.sync == Synchrony::Sync;
        let seq = self.msg_seq;
        self.msg_seq += 1;
        self.outbox.push(Stamped {
            time: now,
            seq,
            msg: OutMsg::RemoteIo {
                slot,
                // Strip the pid tag: shared files live in one
                // cluster-wide namespace, so every reader of file
                // `0x8000 | k` hits the same disk extent.
                file_id: ev.file_id & 0xFFFF,
                offset: ev.offset,
                length: ev.length,
                kind,
                sync,
            },
        });
        if sync {
            let p = &mut self.procs[slot];
            p.state = ProcState::Blocked;
            p.blocked_since = now;
            self.sched_obs.sync_blocks += 1;
        } else if self.procs[slot].exhausted() {
            self.finish_process(slot, now);
        } else {
            let p = &mut self.procs[slot];
            p.state = ProcState::Ready;
            self.ready.push_back(slot);
        }
    }

    /// Route shared-file requests through the coordinator outbox. Must be
    /// set before [`Simulation::start`].
    pub(crate) fn enable_cluster(&mut self) {
        self.cluster = true;
    }

    /// Pop-and-handle every event with `time <= limit`, stopping early if
    /// the run-loop stop condition latches (`halted`). Behaves exactly
    /// like the corresponding stretch of [`Simulation::run`]'s loop: once
    /// halted no further events pop until an admission or remote
    /// completion un-latches it.
    pub(crate) fn advance_until(&mut self, limit: SimTime) {
        while !self.halted {
            let Some((now, ev)) = self.queue.pop_before(limit) else { break };
            if self.timeline_due(now) {
                self.sample_timeline(now);
            }
            if self.handle_event(now, ev) {
                self.halted = true;
            }
        }
        // Catch the grid up to the epoch barrier so every group commits
        // the same barrier-aligned grid regardless of its own event
        // times (a halted group's no-op rows are deterministic too).
        if self.timeline_due(limit) {
            self.sample_timeline(limit);
        }
    }

    /// Earliest pending event time, or `None` when this group has nothing
    /// left to do (empty queue, or halted with only residual flush
    /// events the quiesce path will account).
    pub(crate) fn peek_next_time(&self) -> Option<SimTime> {
        if self.halted {
            return None;
        }
        self.queue.peek_time()
    }

    /// Move accumulated cross-group messages into `batch`, tagged with
    /// this group's index for the deterministic `(time, seq, group)`
    /// merge.
    pub(crate) fn drain_outbox(&mut self, group: usize, batch: &mut Vec<(SimTime, u64, usize, OutMsg)>) {
        for s in self.outbox.drain(..) {
            batch.push((s.time, s.seq, group, s.msg));
        }
    }

    /// Service a remote (shared-file) request against this group's disks,
    /// bypassing the cache — shared traffic models uncached cross-machine
    /// I/O. Returns the device latency.
    pub(crate) fn service_remote(
        &mut self,
        now: SimTime,
        kind: AccessKind,
        file_id: u32,
        offset: u64,
        length: u64,
    ) -> SimDuration {
        self.device_op(now, kind, file_id, offset, length)
    }

    /// Deliver the completion for a parked synchronous remote request:
    /// the process's `IoDone` fires at `at` (barrier + owner's device
    /// latency).
    pub(crate) fn complete_remote(&mut self, slot: usize, at: SimTime) {
        debug_assert_eq!(self.procs[slot].state, ProcState::Blocked);
        self.halted = false;
        self.queue.schedule(at, Ev::IoDone { slot });
    }

    /// Admit a process mid-run at time `now` (the sharded admission
    /// scheduler's entry point). Validation matches
    /// [`Simulation::add_process_shared`]; on success the process is
    /// dispatched immediately if a CPU is free.
    ///
    /// # Errors
    ///
    /// `PidTooWide`, `DuplicatePid`, or `FileIdTooWide` exactly as
    /// [`Simulation::add_process`]; the running simulation is unchanged
    /// on error.
    pub(crate) fn admit_process_at(
        &mut self,
        now: SimTime,
        pid: u32,
        name: impl Into<String>,
        feed: ProcessFeed,
    ) -> Result<(), AddProcessError> {
        debug_assert!(self.started, "admit_process_at before start()");
        if pid >= 1 << 16 {
            return Err(AddProcessError::PidTooWide(pid));
        }
        if self.procs.iter().any(|p| p.pid == pid) {
            return Err(AddProcessError::DuplicatePid(pid));
        }
        if let Some(file_id) = feed.oversized_file_id() {
            return Err(AddProcessError::FileIdTooWide { pid, file_id });
        }
        self.procs.push(ProcessState::from_feed(pid, name, feed));
        self.slice_info.push(None);
        let slot = self.procs.len() - 1;
        self.scale_compute(slot);
        if self.procs[slot].state == ProcState::Done {
            // Born-done (empty trace): route through finish_process so
            // the admission scheduler gets its Done message back.
            self.procs[slot].state = ProcState::Ready;
            self.finish_process(slot, now);
        } else {
            self.ready.push_back(slot);
            self.halted = false;
            self.dispatch(now);
        }
        Ok(())
    }

    /// Build the report: quiesce remaining dirty data and fold up the
    /// metrics. Consumes the simulation; [`Simulation::run`] calls this
    /// after its event loop, the sharded coordinator after the last
    /// barrier.
    pub(crate) fn finalize(mut self) -> SimReport {
        // Quiesce: drain the remaining dirty data to the disks for
        // accounting (does not extend the measured wall clock). This
        // covers both ranges already pulled into flusher queues and
        // blocks still dirty in the cache.
        let end = self.wall_end;
        let queued: Vec<ByteRange> =
            self.flush_queues.iter_mut().flat_map(|q| q.drain(..)).collect();
        self.flush_queued = 0;
        for r in queued {
            let disk = (r.file_id as usize) % self.config.n_disks;
            let p = self.placements.get(&r.file_id).copied();
            if let Some(p) = p {
                self.device_access(end, p.disk, AccessKind::Write, p.base + r.offset, r.length);
            } else {
                self.device_access(end, disk, AccessKind::Write, r.offset, r.length);
            }
            self.disk_write_series.add(end, r.length as f64);
        }
        if let Some(mut cache) = self.cache.take() {
            let leftovers = cache.flush_all();
            for r in leftovers {
                let disk = (r.file_id as usize) % self.config.n_disks;
                let p = self.placements.get(&r.file_id).copied();
                if let Some(p) = p {
                    self.device_access(end, p.disk, AccessKind::Write, p.base + r.offset, r.length);
                } else {
                    self.device_access(end, disk, AccessKind::Write, r.offset, r.length);
                }
                self.disk_write_series.add(end, r.length as f64);
            }
            self.cache = Some(cache);
        }

        let capacity = SimDuration::from_ticks(end.ticks() * self.config.n_cpus as u64);
        let idle = capacity.saturating_sub(self.busy);
        let mut disk_totals = storage_model::DeviceStats::default();
        for d in &self.disks {
            disk_totals.merge(d.stats());
        }
        // Feed the process-wide event counter (sweep heartbeat ev/s).
        obs::add_sim_events(self.procs.iter().map(|p| p.ios_issued).sum());
        let mut disks_obs = obs::DiskCounters::default();
        for d in &self.disks {
            disks_obs.merge(&d.obs_counters());
        }
        let obs = obs::ObsReport {
            scheduler: self.sched_obs.clone(),
            cache: self
                .cache
                .as_ref()
                .map(|c| c.obs_counters())
                .unwrap_or_default(),
            timing_wheel: self.queue.stats().clone(),
            disks: disks_obs,
        };
        SimReport {
            wall_end: end,
            n_cpus: self.config.n_cpus,
            cpu_busy: self.busy.min(capacity),
            cpu_idle: idle,
            overhead: self.overhead,
            processes: self
                .procs
                .iter()
                .map(|p| ProcessMetrics {
                    pid: p.pid,
                    name: p.name.clone(),
                    cpu_used: p.cpu_used,
                    blocked_time: p.blocked_time,
                    finished_at: p.finished_at,
                    ios_issued: p.ios_issued,
                })
                .collect(),
            cache: self
                .cache
                .as_ref()
                .map(|c| c.stats().clone())
                .unwrap_or_default(),
            disk_totals,
            logical_series: self.logical_series,
            disk_read_series: self.disk_read_series,
            disk_write_series: self.disk_write_series,
            obs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffer_cache::WritePolicy;
    use sim_core::units::{KB, MB};

    /// A simple synthetic app: `n` sequential reads of `io` bytes with
    /// `gap` compute between them.
    fn reader_trace(pid: u32, n: u64, io: u64, gap: SimDuration) -> Trace {
        let mut t = Trace::new();
        let mut wall = SimTime::ZERO;
        for i in 0..n {
            wall += gap;
            t.push(IoEvent::logical(Direction::Read, pid, 1, i * io, io, wall, gap));
        }
        t
    }

    fn writer_trace(pid: u32, n: u64, io: u64, gap: SimDuration) -> Trace {
        let mut t = Trace::new();
        let mut wall = SimTime::ZERO;
        for i in 0..n {
            wall += gap;
            let mut e = IoEvent::logical(Direction::Write, pid, 1, i * io, io, wall, gap);
            e.sync = Synchrony::Sync;
            t.push(e);
        }
        t
    }

    #[test]
    fn single_reader_conserves_time() {
        let mut sim = Simulation::new(SimConfig::buffered(8 * MB));
        sim.add_process(1, "reader", &reader_trace(1, 100, 64 * KB, SimDuration::from_millis(5))).expect("valid process");
        let r = sim.run();
        r.check_time_conservation();
        assert_eq!(r.processes.len(), 1);
        assert_eq!(r.processes[0].ios_issued, 100);
        assert!(r.wall_end > SimTime::ZERO);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sim = Simulation::new(SimConfig::buffered(8 * MB));
            sim.add_process(1, "a", &reader_trace(1, 200, 64 * KB, SimDuration::from_millis(2))).expect("valid process");
            sim.add_process(2, "b", &writer_trace(2, 200, 64 * KB, SimDuration::from_millis(2))).expect("valid process");
            let r = sim.run();
            (r.wall_end, r.cpu_busy, r.cpu_idle, r.disk_totals.total_bytes())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cache_reduces_wall_time_for_rereads() {
        // Read the same 4 MB five times over: with a cache most passes
        // hit; without, every read goes to disk.
        let make_trace = || {
            let mut t = Trace::new();
            let mut wall = SimTime::ZERO;
            for pass in 0..5u64 {
                for i in 0..64u64 {
                    wall += SimDuration::from_millis(1);
                    t.push(IoEvent::logical(
                        Direction::Read,
                        1,
                        1,
                        i * 64 * KB,
                        64 * KB,
                        wall,
                        SimDuration::from_millis(1),
                    ));
                    let _ = pass;
                }
            }
            t
        };
        let mut cached = Simulation::new(SimConfig::buffered(16 * MB));
        cached.add_process(1, "r", &make_trace()).expect("valid process");
        let with_cache = cached.run();

        let mut uncached = Simulation::new(SimConfig::uncached());
        uncached.add_process(1, "r", &make_trace()).expect("valid process");
        let without = uncached.run();

        assert!(
            with_cache.wall_end < without.wall_end,
            "cache {} should beat no cache {}",
            with_cache.wall_end,
            without.wall_end
        );
        assert!(with_cache.cache.hit_blocks > 0);
    }

    #[test]
    fn write_behind_beats_write_through() {
        let trace = writer_trace(1, 300, 64 * KB, SimDuration::from_millis(1));
        let mut wb_cfg = SimConfig::buffered(64 * MB);
        wb_cfg.cache.as_mut().unwrap().write_policy = WritePolicy::WriteBehind;
        let mut wb = Simulation::new(wb_cfg);
        wb.add_process(1, "w", &trace).expect("valid process");
        let wb_r = wb.run();

        let mut wt_cfg = SimConfig::buffered(64 * MB);
        wt_cfg.cache.as_mut().unwrap().write_policy = WritePolicy::WriteThrough;
        let mut wt = Simulation::new(wt_cfg);
        wt.add_process(1, "w", &trace).expect("valid process");
        let wt_r = wt.run();

        assert!(
            wb_r.cpu_idle < wt_r.cpu_idle,
            "write-behind idle {} should beat write-through {}",
            wb_r.cpu_idle,
            wt_r.cpu_idle
        );
    }

    #[test]
    fn read_ahead_hides_latency_for_sequential_reads() {
        let trace = reader_trace(1, 500, 64 * KB, SimDuration::from_millis(20));
        let mut ra_cfg = SimConfig::buffered(64 * MB);
        ra_cfg.cache.as_mut().unwrap().read_ahead = true;
        let mut ra = Simulation::new(ra_cfg);
        ra.add_process(1, "r", &trace).expect("valid process");
        let ra_r = ra.run();

        let mut nra_cfg = SimConfig::buffered(64 * MB);
        nra_cfg.cache.as_mut().unwrap().read_ahead = false;
        let mut nra = Simulation::new(nra_cfg);
        nra.add_process(1, "r", &trace).expect("valid process");
        let nra_r = nra.run();

        assert!(
            ra_r.cpu_idle < nra_r.cpu_idle / 2,
            "read-ahead idle {} should slash no-read-ahead idle {}",
            ra_r.cpu_idle,
            nra_r.cpu_idle
        );
        assert!(ra_r.cache.readahead_hit_blocks > 0);
    }

    #[test]
    fn async_process_never_blocks() {
        let mut t = Trace::new();
        let mut wall = SimTime::ZERO;
        for i in 0..200u64 {
            wall += SimDuration::from_millis(2);
            let mut e =
                IoEvent::logical(Direction::Read, 1, 1, i * 64 * KB, 64 * KB, wall, SimDuration::from_millis(2));
            e.sync = Synchrony::Async;
            t.push(e);
        }
        let mut sim = Simulation::new(SimConfig::buffered(4 * MB)); // tiny cache
        sim.add_process(1, "les-like", &t).expect("valid process");
        let r = sim.run();
        assert_eq!(r.processes[0].blocked_time, SimDuration::ZERO);
        assert!(r.utilization() > 0.95, "async app should keep CPU busy: {}", r.utilization());
    }

    #[test]
    fn two_processes_overlap_compute_and_io() {
        // One process alone idles while waiting on disk; a second fills
        // the gap — the n+1 rule of §2.2.
        let t1 = reader_trace(1, 300, 256 * KB, SimDuration::from_millis(5));
        let t2 = reader_trace(2, 300, 256 * KB, SimDuration::from_millis(5));
        let solo = {
            let mut sim = Simulation::new(SimConfig::buffered(4 * MB));
            sim.add_process(1, "solo", &t1).expect("valid process");
            sim.run()
        };
        let duo = {
            let mut sim = Simulation::new(SimConfig::buffered(4 * MB));
            sim.add_process(1, "a", &t1).expect("valid process");
            sim.add_process(2, "b", &t2).expect("valid process");
            sim.run()
        };
        assert!(
            duo.utilization() > solo.utilization(),
            "duo {} should beat solo {}",
            duo.utilization(),
            solo.utilization()
        );
        // And the duo finishes in far less than twice the solo time.
        assert!(duo.wall_secs() < 1.9 * solo.wall_secs());
    }

    #[test]
    fn disk_traffic_is_accounted() {
        let mut sim = Simulation::new(SimConfig::buffered(8 * MB));
        sim.add_process(1, "w", &writer_trace(1, 100, 64 * KB, SimDuration::from_millis(1))).expect("valid process");
        let r = sim.run();
        // Everything written must reach the disks (flush or quiesce).
        assert_eq!(r.disk_totals.bytes_written, 100 * 64 * KB);
        let series_total: f64 = r.disk_write_series.bins().iter().sum();
        assert_eq!(series_total as u64, 100 * 64 * KB);
    }

    #[test]
    fn uncached_reads_hit_disk_every_time() {
        let mut sim = Simulation::new(SimConfig::uncached());
        sim.add_process(1, "r", &reader_trace(1, 50, 64 * KB, SimDuration::from_millis(1))).expect("valid process");
        let r = sim.run();
        assert_eq!(r.disk_totals.reads, 50);
        assert_eq!(r.disk_totals.bytes_read, 50 * 64 * KB);
    }

    #[test]
    fn ssd_tier_adds_penalty_but_stays_fast() {
        let trace = reader_trace(1, 200, 256 * KB, SimDuration::from_millis(1));
        let mut mm = Simulation::new(SimConfig::buffered(64 * MB));
        mm.add_process(1, "r", &trace).expect("valid process");
        let mm_r = mm.run();
        let mut ssd_cfg = SimConfig::ssd();
        ssd_cfg.cache.as_mut().unwrap().capacity = 64 * MB;
        let mut ssd = Simulation::new(ssd_cfg);
        ssd.add_process(1, "r", &trace).expect("valid process");
        let ssd_r = ssd.run();
        // SSD adds per-access microseconds: slightly slower than main
        // memory, far faster than no cache.
        assert!(ssd_r.wall_end >= mm_r.wall_end);
        assert!(ssd_r.wall_end.ticks() < mm_r.wall_end.ticks() * 2);
    }

    #[test]
    fn per_process_cap_hurts_utilization() {
        // The §6.2 finding: an ownership cap worsens things.
        let t1 = reader_trace(1, 400, 256 * KB, SimDuration::from_millis(3));
        let t2 = reader_trace(2, 400, 256 * KB, SimDuration::from_millis(3));
        let run = |cap: Option<u64>| {
            let mut cfg = SimConfig::buffered(8 * MB);
            cfg.cache.as_mut().unwrap().per_process_cap_blocks = cap;
            let mut sim = Simulation::new(cfg);
            sim.add_process(1, "a", &t1).expect("valid process");
            sim.add_process(2, "b", &t2).expect("valid process");
            sim.run()
        };
        let uncapped = run(None);
        let capped = run(Some(4));
        assert!(
            capped.cpu_idle >= uncapped.cpu_idle,
            "capped idle {} should not beat uncapped {}",
            capped.cpu_idle,
            uncapped.cpu_idle
        );
    }

    #[test]
    fn empty_simulation_reports_zeroes() {
        let sim = Simulation::new(SimConfig::default());
        let r = sim.run();
        assert_eq!(r.wall_end, SimTime::ZERO);
        assert_eq!(r.utilization(), 0.0);
        r.check_time_conservation();
    }

    #[test]
    fn sprite_delayed_writes_flush_via_the_aging_timer() {
        // Write a burst, then compute quietly for a minute: the 30 s
        // delayed-write timer must wake the flusher without any further
        // I/O activity, so the data reaches the disks long before the
        // quiesce path.
        let mut t = Trace::new();
        let mut wall = SimTime::ZERO;
        for i in 0..16u64 {
            wall += SimDuration::from_millis(1);
            t.push(IoEvent::logical(
                Direction::Write, 1, 1, i * 64 * KB, 64 * KB, wall, SimDuration::from_millis(1),
            ));
        }
        // One final read 60 CPU-seconds later keeps the process alive
        // past the aging deadline.
        wall += SimDuration::from_secs(60);
        t.push(IoEvent::logical(
            Direction::Read, 1, 2, 0, 4 * KB, wall, SimDuration::from_secs(60),
        ));
        let mut cfg = SimConfig::buffered(64 * MB);
        cfg.cache.as_mut().unwrap().write_policy = buffer_cache::WritePolicy::sprite();
        let mut sim = Simulation::new(cfg);
        sim.add_process(1, "w", &t).expect("valid process");
        let r = sim.run();
        // All 1 MB of writes reached disk, and the flush traffic lands in
        // the ~30 s bin, not at the end-of-run quiesce (~60 s).
        assert_eq!(r.disk_totals.bytes_written, 16 * 64 * KB);
        let writes = r.disk_write_series.bins();
        let flushed_by_35s: f64 = writes.iter().take(36).sum();
        assert!(
            flushed_by_35s as u64 >= 16 * 64 * KB,
            "delayed writes should flush at ~30s: {writes:?}"
        );
    }

    #[test]
    fn two_cpus_run_compute_bound_jobs_in_parallel() {
        // Two processes with long compute gaps and one tiny I/O each: on
        // one CPU the wall time doubles; on two CPUs they overlap.
        let make = |pid| reader_trace(pid, 20, 4 * KB, SimDuration::from_millis(50));
        let run = |cpus: usize| {
            let mut cfg = SimConfig::buffered(8 * MB);
            cfg.n_cpus = cpus;
            let mut sim = Simulation::new(cfg);
            sim.add_process(1, "a", &make(1)).expect("valid process");
            sim.add_process(2, "b", &make(2)).expect("valid process");
            let r = sim.run();
            r.check_time_conservation();
            r
        };
        let uni = run(1);
        let dual = run(2);
        assert_eq!(dual.n_cpus, 2);
        assert!(
            dual.wall_secs() < 0.7 * uni.wall_secs(),
            "2 CPUs {:.2}s should beat 1 CPU {:.2}s",
            dual.wall_secs(),
            uni.wall_secs()
        );
    }

    #[test]
    fn multi_cpu_utilization_accounts_all_cpus() {
        // One process on four CPUs: at most a quarter of capacity is busy.
        let mut cfg = SimConfig::buffered(8 * MB);
        cfg.n_cpus = 4;
        let mut sim = Simulation::new(cfg);
        sim.add_process(1, "solo", &reader_trace(1, 50, 4 * KB, SimDuration::from_millis(10))).expect("valid process");
        let r = sim.run();
        r.check_time_conservation();
        assert!(r.utilization() <= 0.26, "solo on 4 CPUs: {:.3}", r.utilization());
    }

    #[test]
    fn duplicate_pids_rejected() {
        let mut sim = Simulation::new(SimConfig::default());
        let t = reader_trace(1, 1, KB, SimDuration::from_millis(1));
        sim.add_process(1, "a", &t).expect("first pid is fine");
        assert_eq!(sim.add_process(1, "b", &t), Err(AddProcessError::DuplicatePid(1)));
        // The failed add must not have registered a process.
        let r = sim.run();
        assert_eq!(r.processes.len(), 1);
    }

    #[test]
    fn wide_pids_and_file_ids_rejected() {
        let mut sim = Simulation::new(SimConfig::default());
        let t = reader_trace(1, 1, KB, SimDuration::from_millis(1));
        assert_eq!(
            sim.add_process(1 << 16, "wide-pid", &t),
            Err(AddProcessError::PidTooWide(1 << 16))
        );
        let mut wide = Trace::new();
        let mut e = IoEvent::logical(
            Direction::Read, 2, 1 << 16, 0, KB, SimTime::ZERO, SimDuration::from_millis(1),
        );
        e.file_id = 1 << 16;
        wide.push(e);
        assert_eq!(
            sim.add_process(2, "wide-file", &wide),
            Err(AddProcessError::FileIdTooWide { pid: 2, file_id: 1 << 16 })
        );
        assert!(format!("{}", AddProcessError::DuplicatePid(3)).contains("duplicate pid 3"));
    }

    #[test]
    fn shared_slice_replay_matches_per_process_traces() {
        // Two processes replaying ONE shared slice must behave exactly
        // like two processes given separate (identical) traces: the
        // on-the-fly remap keeps their file namespaces disjoint.
        let trace = reader_trace(1, 150, 128 * KB, SimDuration::from_millis(2));
        let shared: std::sync::Arc<[IoEvent]> = trace.events().copied().collect();
        let via_shared = {
            let mut sim = Simulation::new(SimConfig::buffered(8 * MB));
            sim.add_process_shared(1, "a", shared.clone()).expect("valid");
            sim.add_process_shared(2, "b", shared.clone()).expect("valid");
            sim.run()
        };
        let via_traces = {
            let mut sim = Simulation::new(SimConfig::buffered(8 * MB));
            sim.add_process(1, "a", &trace).expect("valid");
            sim.add_process(2, "b", &trace).expect("valid");
            sim.run()
        };
        assert_eq!(via_shared.wall_end, via_traces.wall_end);
        assert_eq!(via_shared.cpu_idle, via_traces.cpu_idle);
        assert_eq!(
            via_shared.disk_totals.total_bytes(),
            via_traces.disk_totals.total_bytes()
        );
        // No cross-process cache sharing: both processes miss on their
        // own namespaced blocks.
        assert_eq!(via_shared.cache.hit_blocks, via_traces.cache.hit_blocks);
    }

    #[test]
    fn queueing_disk_reports_depth_distribution() {
        use crate::config::DeviceSpec;
        let mut cfg = SimConfig::uncached();
        cfg.devices = Some(DeviceSpec::Disk(storage_model::DiskParams::ymp_with_elevator()));
        let mut sim = Simulation::new(cfg);
        sim.add_process(1, "r", &reader_trace(1, 50, 64 * KB, SimDuration::from_millis(1)))
            .expect("valid process");
        let r = sim.run();
        assert_eq!(r.disk_totals.reads, 50);
        let h = r.obs.disks.queue_depth.as_ref().expect("queueing farm reports depth");
        assert_eq!(h.total(), 50);
    }

    #[test]
    fn nvme_farm_is_faster_than_ymp_disks() {
        use crate::config::DeviceSpec;
        let trace = reader_trace(1, 200, 256 * KB, SimDuration::from_millis(1));
        let run = |devices| {
            let mut cfg = SimConfig::uncached();
            cfg.devices = devices;
            let mut sim = Simulation::new(cfg);
            sim.add_process(1, "r", &trace).expect("valid process");
            sim.run()
        };
        let ymp = run(None);
        let nvme = run(Some(DeviceSpec::Nvme(storage_model::NvmeParams::modern_2026())));
        assert!(
            nvme.wall_end < ymp.wall_end,
            "nvme {} should beat 1991 disks {}",
            nvme.wall_end,
            ymp.wall_end
        );
        assert_eq!(nvme.disk_totals.bytes_read, ymp.disk_totals.bytes_read);
    }

    #[test]
    fn tiered_farm_runs_and_counts_tier_traffic() {
        use crate::config::DeviceSpec;
        let mut cfg = SimConfig::uncached();
        cfg.devices = Some(DeviceSpec::Tiered(storage_model::TieredParams::modern_2026()));
        cfg.n_disks = 2;
        let mut sim = Simulation::new(cfg);
        sim.add_process(1, "w", &writer_trace(1, 50, 64 * KB, SimDuration::from_millis(1)))
            .expect("valid process");
        let r = sim.run();
        assert_eq!(r.disk_totals.bytes_written, 50 * 64 * KB);
        let hits: u64 = r.obs.disks.tier_hits.iter().sum();
        assert_eq!(hits, 50, "every write lands in a tier: {:?}", r.obs.disks.tier_hits);
    }

    #[test]
    fn cpu_speedup_shrinks_compute_not_io() {
        let trace = reader_trace(1, 100, 256 * KB, SimDuration::from_millis(20));
        let run = |speedup| {
            let mut cfg = SimConfig::uncached();
            cfg.cpu_speedup = speedup;
            let mut sim = Simulation::new(cfg);
            sim.add_process(1, "r", &trace).expect("valid process");
            sim.run()
        };
        let paper = run(1);
        let modern = run(500);
        assert!(
            modern.wall_end < paper.wall_end,
            "faster CPU {} should finish before {}",
            modern.wall_end,
            paper.wall_end
        );
        // Same I/O volume either way — only the compute gaps shrank.
        assert_eq!(modern.disk_totals.bytes_read, paper.disk_totals.bytes_read);
        assert!(modern.cpu_busy < paper.cpu_busy);
    }

    #[test]
    fn placement_wraps_instead_of_overrunning_small_devices() {
        // 40 files on ONE Y-MP disk (4 × 256 MB slots): without the wrap
        // the 5th file's base would already exceed the 1200 MB capacity.
        let mut cfg = SimConfig::uncached();
        cfg.n_disks = 1;
        let mut sim = Simulation::new(cfg);
        let mut t = Trace::new();
        let mut wall = SimTime::ZERO;
        for f in 0..40u32 {
            wall += SimDuration::from_millis(1);
            t.push(IoEvent::logical(
                Direction::Read, 1, f, 0, 64 * KB, wall, SimDuration::from_millis(1),
            ));
        }
        sim.add_process(1, "many-files", &t).expect("valid process");
        let r = sim.run();
        assert_eq!(r.disk_totals.reads, 40);
    }
}
