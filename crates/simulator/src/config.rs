//! Simulator configuration: scheduler, cache tier, and disk farm.

use buffer_cache::CacheConfig;
use serde::{Deserialize, Serialize};
use sim_core::SimDuration;
use storage_model::{AnyDevice, DiskModel, DiskParams, NvmeModel, NvmeParams, TieredDevice, TieredParams};

/// Scheduler parameters (§6.1: quantum, process-switch overhead, file
/// system code overhead, interrupt service time).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedParams {
    /// Round-robin quantum.
    pub quantum: SimDuration,
    /// CPU cost of a context switch (charged on every dispatch).
    pub ctx_switch: SimDuration,
    /// CPU cost of file-system code per I/O request. Tuned so that two
    /// venus copies with no idle time take ≈ 761 s, the paper's Figure 8
    /// baseline.
    pub fs_overhead: SimDuration,
    /// CPU cost of servicing a device interrupt (charged per device
    /// operation completion).
    pub interrupt_service: SimDuration,
}

impl Default for SchedParams {
    fn default() -> Self {
        SchedParams {
            quantum: SimDuration::from_millis(16),
            ctx_switch: SimDuration::from_micros(25),
            fs_overhead: SimDuration::from_micros(30),
            interrupt_service: SimDuration::from_micros(10),
        }
    }
}

/// Which memory technology backs the cache; the SSD adds a per-access
/// transfer penalty (§6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheTier {
    /// Main-memory file cache: no per-access penalty beyond FS code.
    MainMemory,
    /// Solid-state disk used as an OS-managed cache: setup + 1 µs/KB per
    /// access.
    Ssd,
}

impl CacheTier {
    /// Extra latency for moving `bytes` through this tier.
    pub fn access_penalty(self, bytes: u64) -> SimDuration {
        match self {
            CacheTier::MainMemory => SimDuration::ZERO,
            CacheTier::Ssd => {
                SimDuration::from_micros(20)
                    + SimDuration::from_secs_f64(
                        bytes as f64
                            / (sim_core::units::SSD_GB_PER_SEC * sim_core::units::GB as f64),
                    )
            }
        }
    }
}

/// Which device model backs the farm. `None` in [`SimConfig::devices`]
/// means the paper's disk built from [`SimConfig::disk`] — the
/// byte-identical default every figure uses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DeviceSpec {
    /// The paper's disk model (any queueing/scheduler mode).
    Disk(DiskParams),
    /// A multi-queue NVMe flash device.
    Nvme(NvmeParams),
    /// The RAM → NVMe → disk → tape hierarchy.
    Tiered(TieredParams),
}

impl DeviceSpec {
    /// Build device `index` of the farm.
    pub fn build(&self, index: usize) -> AnyDevice {
        match self {
            DeviceSpec::Disk(p) => {
                AnyDevice::Disk(DiskModel::new(format!("disk{index}"), p.clone()))
            }
            DeviceSpec::Nvme(p) => {
                AnyDevice::Nvme(NvmeModel::new(format!("nvme{index}"), p.clone()))
            }
            DeviceSpec::Tiered(p) => {
                AnyDevice::Tiered(Box::new(TieredDevice::new(format!("tiered{index}"), p.clone())))
            }
        }
    }

    /// Per-device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        match self {
            DeviceSpec::Disk(p) => p.capacity,
            DeviceSpec::Nvme(p) => p.capacity,
            DeviceSpec::Tiered(p) => p.tape.capacity,
        }
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Cache configuration; `None` runs every request straight to disk.
    pub cache: Option<CacheConfig>,
    /// Memory technology of the cache.
    pub tier: CacheTier,
    /// Scheduler parameters.
    pub sched: SchedParams,
    /// Disk model parameters (shared by every disk in the farm) when
    /// `devices` is `None`.
    pub disk: DiskParams,
    /// Alternative device model for the farm. `None` (the default and
    /// the paper-faithful mode) builds classic disks from `disk`.
    pub devices: Option<DeviceSpec>,
    /// CPU-speed divisor applied to every compute phase: 1 (default)
    /// replays the trace's Y-MP compute times untouched; a 2026 rerun
    /// uses a large divisor because the same arithmetic now takes a
    /// fraction of the time while the I/O volume is unchanged.
    pub cpu_speedup: u64,
    /// Number of CPUs sharing the ready queue. The paper's simulator
    /// models one CPU (§6.1); more are an extension for reproducing the
    /// §2.2 "n+1 jobs keep n processors busy" rule of thumb.
    pub n_cpus: usize,
    /// Number of disks; files are distributed round-robin (the NASA
    /// system's "many high-speed disks", §2.2).
    pub n_disks: usize,
    /// Max bytes pulled from the cache per flusher batch.
    pub flush_batch: u64,
    /// Wall-clock bin width for the traffic series (Figures 6–7 use 1 s).
    pub series_bin: SimDuration,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cache: Some(CacheConfig::buffered(32 * sim_core::units::MB)),
            tier: CacheTier::MainMemory,
            sched: SchedParams::default(),
            disk: DiskParams::ymp(),
            devices: None,
            cpu_speedup: 1,
            n_cpus: 1,
            n_disks: 8,
            flush_batch: 4 * sim_core::units::MB,
            series_bin: SimDuration::from_secs(1),
        }
    }
}

impl SimConfig {
    /// The paper's best configuration: a buffered cache of `capacity`
    /// bytes in main memory.
    pub fn buffered(capacity: u64) -> SimConfig {
        SimConfig { cache: Some(CacheConfig::buffered(capacity)), ..Default::default() }
    }

    /// The per-CPU SSD share used as an OS-managed cache (§6.3).
    pub fn ssd() -> SimConfig {
        SimConfig {
            cache: Some(CacheConfig::buffered(sim_core::units::YMP_SSD_PER_CPU_BYTES)),
            tier: CacheTier::Ssd,
            ..Default::default()
        }
    }

    /// No cache at all: every logical request is a disk request.
    pub fn uncached() -> SimConfig {
        SimConfig { cache: None, ..Default::default() }
    }

    /// Build device `index` of the farm from whichever spec is active.
    pub fn build_device(&self, index: usize) -> AnyDevice {
        match &self.devices {
            Some(spec) => spec.build(index),
            None => AnyDevice::Disk(DiskModel::new(format!("disk{index}"), self.disk.clone())),
        }
    }

    /// Per-device capacity of the active device model.
    pub fn device_capacity(&self) -> u64 {
        match &self.devices {
            Some(spec) => spec.capacity(),
            None => self.disk.capacity,
        }
    }

    /// Basic validation.
    pub fn validate(&self) {
        assert!(self.n_cpus > 0, "need at least one CPU");
        assert!(self.cpu_speedup > 0, "cpu_speedup is a divisor; must be >= 1");
        assert!(self.n_disks > 0, "need at least one disk");
        assert!(self.flush_batch > 0, "flush batch must be positive");
        assert!(!self.sched.quantum.is_zero(), "quantum must be positive");
        if let Some(c) = &self.cache {
            c.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::units::{KB, MB};

    #[test]
    fn ssd_penalty_is_one_microsecond_per_kb() {
        let p = CacheTier::Ssd.access_penalty(100 * KB);
        // 20 µs setup + 100 µs transfer = 12 ticks.
        assert_eq!(p.ticks(), 12);
        assert_eq!(CacheTier::MainMemory.access_penalty(100 * KB), SimDuration::ZERO);
    }

    #[test]
    fn presets_validate() {
        SimConfig::default().validate();
        SimConfig::buffered(16 * MB).validate();
        SimConfig::ssd().validate();
        SimConfig::uncached().validate();
        assert_eq!(SimConfig::ssd().cache.unwrap().capacity, 256 * MB);
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn zero_disks_rejected() {
        let c = SimConfig { n_disks: 0, ..Default::default() };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "cpu_speedup")]
    fn zero_speedup_rejected() {
        let c = SimConfig { cpu_speedup: 0, ..Default::default() };
        c.validate();
    }

    #[test]
    fn default_devices_are_paper_disks() {
        use storage_model::{AnyDevice, BlockDevice};
        let c = SimConfig::default();
        assert!(c.devices.is_none());
        let d = c.build_device(3);
        assert!(matches!(d, AnyDevice::Disk(_)));
        assert_eq!(d.name(), "disk3");
        assert_eq!(c.device_capacity(), c.disk.capacity);
    }

    #[test]
    fn device_specs_build_their_models() {
        use storage_model::{AnyDevice, NvmeParams, TieredParams};
        let nvme = DeviceSpec::Nvme(NvmeParams::modern_2026());
        assert!(matches!(nvme.build(0), AnyDevice::Nvme(_)));
        assert_eq!(nvme.capacity(), NvmeParams::modern_2026().capacity);
        let tiered = DeviceSpec::Tiered(TieredParams::modern_2026());
        assert!(matches!(tiered.build(0), AnyDevice::Tiered(_)));
        assert_eq!(tiered.capacity(), TieredParams::modern_2026().tape.capacity);
    }
}
