//! The paper's buffering simulator (§6.1): a single CPU, multiple
//! trace-driven processes, a round-robin scheduler, a block cache with
//! read-ahead and write-behind, and a farm of simple seek-distance disks.
//!
//! Correspondence to the paper:
//!
//! * "For each process, there is an input trace in our format, which
//!   determines the size of each I/O and the elapsed time between it and
//!   the next I/O" — [`process::ProcessState`] replays `processTime`
//!   deltas as compute and issues each request in order.
//! * "a simple round-robin scheduler with a quantum that can be
//!   specified each time it is run. The process-switching overhead, file
//!   system code overhead, and interrupt service time are also
//!   parameters" — [`config::SchedParams`].
//! * "There was no queueing at the disks, so the completion time of a
//!   specific I/O was dependent only on the location of the I/O and how
//!   'close' the I/O was to the previous I/O" — the default
//!   [`storage_model::DiskParams`] mode; queueing is available as the
//!   ablation the paper says it lacked.
//! * The SSD is "a huge main-memory cache" with "approximately 1 µs per
//!   kilobyte transferred" added per access — [`config::CacheTier::Ssd`].
//! * Write-behind drains through one flusher stream per disk; dirty
//!   evictions stall the requester — the §6.2 buffer-contention effect.
//!
//! ```
//! use iosim::{SimConfig, Simulation};
//! use iotrace::{Direction, IoEvent, Trace};
//! use sim_core::{SimDuration, SimTime};
//!
//! // A tiny sequential reader behind an 8 MB buffered cache.
//! let mut trace = Trace::new();
//! for i in 0..50u64 {
//!     trace.push(IoEvent::logical(
//!         Direction::Read, 1, 1, i * 65536, 65536,
//!         SimTime::from_ticks(i * 1000), SimDuration::from_millis(5),
//!     ));
//! }
//! let mut sim = Simulation::new(SimConfig::buffered(8 * 1024 * 1024));
//! sim.add_process(1, "reader", &trace).expect("pid and file ids fit");
//! let report = sim.run();
//! report.check_time_conservation();
//! assert_eq!(report.processes[0].ios_issued, 50);
//! assert!(report.utilization() > 0.5, "read-ahead hides most latency");
//! ```

pub mod config;
pub mod engine;
pub mod metrics;
pub mod process;
pub mod sharded;

pub use config::{CacheTier, DeviceSpec, SchedParams, SimConfig};
pub use process::{EventSource, ProcState, ProcessFeed, ProcessState};
pub use engine::{AddProcessError, Simulation, SHARED_FILE_BIT};
pub use metrics::{ProcessMetrics, SimReport};
pub use sharded::{ClusterReport, GroupSummary, ShardedConfig, ShardedSimulation};
