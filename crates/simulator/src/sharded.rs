//! Sharded simulation: thousands of processes and disks per run,
//! deterministic at any shard count.
//!
//! The cluster is split into **groups** — each a full [`Simulation`]
//! with its own CPUs, cache partition, disk farm, and timing wheel.
//! Groups advance independently between **epoch barriers** (see
//! [`sim_core::EpochClock`]); at each barrier the coordinator:
//!
//! 1. drains every group's outbox of cross-group messages (process
//!    completions, shared-file requests) and services them in the
//!    deterministic `(time, seq, group)` merge order;
//! 2. admits parked processes while the global `max_active` admission
//!    cap has room, in FIFO order;
//! 3. picks the next barrier from the minimum pending event time.
//!
//! **Determinism at any shard count.** The semantic partition (groups)
//! is decoupled from the execution parallelism (shards): shard `w` of
//! `n` simply advances the groups with `group % n == w`, and groups
//! never interact between barriers, so which thread runs a group —
//! indeed how many threads exist — cannot change any group's state.
//! Everything cross-group happens on the coordinator thread in an order
//! that is a pure function of simulation state. `run(1)` and `run(64)`
//! therefore produce byte-identical reports, which
//! `tests/sharded_determinism.rs` pins with a proptest over shard
//! counts {1, 2, 3, 7, 16}.
//!
//! **Shared files.** Raw file ids with [`SHARED_FILE_BIT`] set bypass
//! the owning process's group: the request is routed at the next
//! barrier to the group owning that 1 MB stripe
//! ([`buffer_cache::range_owner`]) and serviced by its disks, uncached.
//! A synchronous requester blocks until barrier + the owner's device
//! latency — the conservative-parallel approximation: remote latency is
//! rounded up to the barrier, never missed.
//!
//! ```
//! use iosim::{ShardedConfig, ShardedSimulation, SimConfig};
//! use iotrace::{Direction, IoEvent, Trace};
//! use sim_core::{SimDuration, SimTime};
//!
//! let mut trace = Trace::new();
//! for i in 0..20u64 {
//!     trace.push(IoEvent::logical(
//!         Direction::Read, 1, 1, i * 65536, 65536,
//!         SimTime::from_ticks(i * 1000), SimDuration::from_millis(2),
//!     ));
//! }
//! let mut cluster = ShardedSimulation::new(ShardedConfig::new(4, SimConfig::buffered(1 << 23)));
//! for g in 0..4 {
//!     cluster.add_process(g, 1, format!("job{g}"), &trace).expect("valid");
//! }
//! let report = cluster.run(2);
//! assert_eq!(report.total_processes, 4);
//! assert_eq!(report.ios_issued, 80);
//! ```

use crate::config::SimConfig;
use crate::engine::{AddProcessError, OutMsg, Simulation};
use crate::process::{EventSource, ProcessFeed};
use buffer_cache::{range_owner, CacheStats};
use iotrace::{IoEvent, Trace};
use serde::{Deserialize, Serialize};
use sim_core::{EpochClock, SimDuration, SimTime};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use storage_model::DeviceStats;

/// Cluster shape and scheduling policy for a sharded run.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of groups (semantic partitions). Fixed by the experiment:
    /// changing it changes the simulated cluster; changing the *shard*
    /// count does not.
    pub groups: usize,
    /// Barrier spacing. Smaller epochs tighten the remote-latency
    /// rounding but cost more coordinator round-trips.
    pub epoch: SimDuration,
    /// Global admission cap: at most this many processes run at once
    /// across the whole cluster; the rest queue FIFO and are admitted at
    /// barriers as seats free up. `None` admits everything at time zero.
    pub max_active: Option<usize>,
    /// Per-group simulation config (CPUs, cache partition, disks). Use
    /// [`buffer_cache::CacheConfig::partitioned`] to split one cache
    /// budget across the groups.
    pub base: SimConfig,
}

impl ShardedConfig {
    /// A cluster of `groups` copies of `base` with a 250 ms epoch and no
    /// admission cap.
    pub fn new(groups: usize, base: SimConfig) -> ShardedConfig {
        ShardedConfig {
            groups: groups.max(1),
            epoch: SimDuration::from_millis(250),
            max_active: None,
            base,
        }
    }
}

/// A process waiting for admission (or for the run to begin).
#[derive(Debug)]
struct Parked {
    group: usize,
    pid: u32,
    name: String,
    feed: ProcessFeed,
}

/// Builder/driver for a sharded run: add processes (each pinned to a
/// group), then [`ShardedSimulation::run`] with a shard count.
#[derive(Debug)]
pub struct ShardedSimulation {
    cfg: ShardedConfig,
    parked: VecDeque<Parked>,
}

/// Coordinator-side counters for one sharded run.
#[derive(Debug, Clone, Copy, Default)]
struct CoordStats {
    epochs: u64,
    admissions: u64,
    remote_ops: u64,
    remote_bytes: u64,
}

/// One group's slice of a [`ClusterReport`]. Deliberately compact — no
/// time series — so a 1000-group campaign report stays manageable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupSummary {
    /// When the group's last process finished.
    pub wall_end: SimTime,
    /// Group CPU busy time.
    pub cpu_busy: SimDuration,
    /// Group CPU idle time.
    pub cpu_idle: SimDuration,
    /// Of `cpu_busy`, pure overhead.
    pub overhead: SimDuration,
    /// Processes that ran in this group.
    pub processes: usize,
    /// Requests they issued.
    pub ios_issued: u64,
    /// The group's cache partition statistics.
    pub cache: CacheStats,
    /// The group's disk-farm totals.
    pub disk_totals: DeviceStats,
}

/// Whole-cluster outcome of a sharded run. Every field is a pure
/// function of the simulated cluster (groups, traces, config) — nothing
/// depends on the shard count or thread scheduling, so serializing this
/// struct yields byte-identical JSON at any shard count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Number of groups simulated.
    pub n_groups: usize,
    /// Total CPUs across the cluster.
    pub n_cpus: usize,
    /// Barrier spacing used.
    pub epoch: SimDuration,
    /// Epoch barriers the coordinator ran.
    pub epochs: u64,
    /// Processes admitted by the global scheduler.
    pub admissions: u64,
    /// Shared-file requests routed cross-group.
    pub remote_ops: u64,
    /// Bytes moved by those requests.
    pub remote_bytes: u64,
    /// When the cluster's last process finished.
    pub wall_end: SimTime,
    /// Summed CPU busy time.
    pub cpu_busy: SimDuration,
    /// Summed CPU idle time.
    pub cpu_idle: SimDuration,
    /// Summed scheduling/FS overhead.
    pub overhead: SimDuration,
    /// Processes simulated across all groups.
    pub total_processes: usize,
    /// Requests issued across all groups.
    pub ios_issued: u64,
    /// Cluster-wide cache statistics (sum of the partitions).
    pub cache: CacheStats,
    /// Cluster-wide disk totals.
    pub disk_totals: DeviceStats,
    /// Merged per-subsystem observability counters.
    pub obs: obs::ObsReport,
    /// Per-group breakdown, in group order.
    pub groups: Vec<GroupSummary>,
}

impl ClusterReport {
    /// Cluster CPU utilization: summed busy time over summed per-group
    /// capacity (each group's CPUs x its own wall clock).
    pub fn utilization(&self) -> f64 {
        let per_group_cpus = self.n_cpus.checked_div(self.n_groups).unwrap_or(0);
        let capacity: u64 = self
            .groups
            .iter()
            .map(|g| g.wall_end.ticks() * per_group_cpus.max(1) as u64)
            .sum();
        if capacity == 0 {
            return 0.0;
        }
        self.cpu_busy.ticks() as f64 / capacity as f64
    }
}

impl ShardedSimulation {
    /// An empty cluster for `cfg`.
    pub fn new(cfg: ShardedConfig) -> ShardedSimulation {
        cfg.base.validate();
        assert!(cfg.max_active != Some(0), "max_active of 0 can never admit anything");
        ShardedSimulation { cfg, parked: VecDeque::new() }
    }

    /// The configured number of groups.
    pub fn groups(&self) -> usize {
        self.cfg.groups
    }

    /// Queue a process on `group`, replaying `trace`. Processes are
    /// admitted FIFO under the [`ShardedConfig::max_active`] cap; pids
    /// must be unique *within a group* (each group is its own pid/file
    /// namespace).
    ///
    /// # Errors
    ///
    /// * [`AddProcessError::UnknownGroup`] — `group >= self.groups()`.
    /// * [`AddProcessError::PidTooWide`], [`AddProcessError::DuplicatePid`],
    ///   [`AddProcessError::FileIdTooWide`] — same contract as
    ///   [`Simulation::add_process`], with the duplicate check covering
    ///   processes already queued on the group (admission would otherwise
    ///   collide mid-run, after the pid namespacing). The cluster is
    ///   unchanged on error.
    pub fn add_process(
        &mut self,
        group: usize,
        pid: u32,
        name: impl Into<String>,
        trace: &Trace,
    ) -> Result<(), AddProcessError> {
        self.add_process_shared(group, pid, name, trace.events().copied().collect())
    }

    /// Queue a process replaying a shared, immutable event slice — the
    /// zero-copy path, mirroring [`Simulation::add_process_shared`].
    ///
    /// # Errors
    ///
    /// Same contract as [`ShardedSimulation::add_process`].
    pub fn add_process_shared(
        &mut self,
        group: usize,
        pid: u32,
        name: impl Into<String>,
        events: Arc<[IoEvent]>,
    ) -> Result<(), AddProcessError> {
        self.add_process_feed(group, pid, name, ProcessFeed::Shared(events))
    }

    /// Queue a process replaying a streaming [`EventSource`] — the
    /// bounded-memory path, mirroring
    /// [`Simulation::add_process_streamed`]. Each queued process needs
    /// its own source (its own cursor); sources backed by the same
    /// spilled trace share decoded blocks at the storage layer.
    ///
    /// # Errors
    ///
    /// Same contract as [`ShardedSimulation::add_process`].
    pub fn add_process_streamed(
        &mut self,
        group: usize,
        pid: u32,
        name: impl Into<String>,
        source: Box<dyn EventSource>,
    ) -> Result<(), AddProcessError> {
        self.add_process_feed(group, pid, name, ProcessFeed::Streamed(source))
    }

    /// Shared validation + parking behind both feed kinds.
    pub fn add_process_feed(
        &mut self,
        group: usize,
        pid: u32,
        name: impl Into<String>,
        feed: ProcessFeed,
    ) -> Result<(), AddProcessError> {
        if group >= self.cfg.groups {
            return Err(AddProcessError::UnknownGroup(group));
        }
        if pid >= 1 << 16 {
            return Err(AddProcessError::PidTooWide(pid));
        }
        if self.parked.iter().any(|q| q.group == group && q.pid == pid) {
            return Err(AddProcessError::DuplicatePid(pid));
        }
        if let Some(file_id) = feed.oversized_file_id() {
            return Err(AddProcessError::FileIdTooWide { pid, file_id });
        }
        self.parked.push_back(Parked { group, pid, name: name.into(), feed });
        Ok(())
    }

    /// Run the cluster on `shards` worker threads and report.
    ///
    /// `shards` is an execution knob only: it is clamped to
    /// `[1, groups]`, and every value produces the same report.
    /// `shards == 1` runs inline on the calling thread with no pool.
    pub fn run(self, shards: usize) -> ClusterReport {
        let ShardedSimulation { cfg, mut parked } = self;
        let clock = EpochClock::new(cfg.epoch);
        let mut sims: Vec<Simulation> =
            (0..cfg.groups).map(|_| Simulation::new(cfg.base.clone())).collect();
        for sim in &mut sims {
            sim.enable_cluster();
            sim.start();
        }
        let cells: Vec<Mutex<Simulation>> = sims.into_iter().map(Mutex::new).collect();
        let shards = shards.clamp(1, cfg.groups);

        let stats = if shards <= 1 {
            coordinate(&cells, clock, &mut parked, cfg.max_active, |t| {
                for cell in &cells {
                    lock(cell).advance_until(t);
                }
            })
        } else {
            // A persistent pool, two rendezvous per epoch: the first
            // releases the workers into the epoch, the second hands the
            // barrier back to the coordinator. Same shape as
            // `experiments::par_sweep`, but with sticky group->shard
            // assignment instead of work stealing — stickiness keeps each
            // group's cache partition and wheel hot in one core's cache.
            let rendezvous = Barrier::new(shards + 1);
            let target = AtomicU64::new(0);
            let running = AtomicBool::new(true);
            std::thread::scope(|scope| {
                for w in 0..shards {
                    let (cells, rendezvous, target, running) =
                        (&cells, &rendezvous, &target, &running);
                    scope.spawn(move || {
                        let track = obs::enabled()
                            .then(|| obs::register_track(obs::Domain::Host, format!("shard{w}")));
                        let mut epoch_idx = 0u64;
                        loop {
                            rendezvous.wait();
                            if !running.load(Ordering::Acquire) {
                                break;
                            }
                            let t = SimTime::from_ticks(target.load(Ordering::Acquire));
                            let t0 = obs::host_now_ns();
                            for (g, cell) in cells.iter().enumerate() {
                                if g % shards == w {
                                    lock(cell).advance_until(t);
                                }
                            }
                            if let Some(track) = track {
                                let t1 = obs::host_now_ns();
                                obs::complete(
                                    track,
                                    "epoch",
                                    t0,
                                    t1.saturating_sub(t0),
                                    Some(epoch_idx),
                                );
                            }
                            epoch_idx += 1;
                            rendezvous.wait();
                        }
                    });
                }
                let stats = coordinate(&cells, clock, &mut parked, cfg.max_active, |t| {
                    target.store(t.ticks(), Ordering::Release);
                    rendezvous.wait();
                    rendezvous.wait();
                });
                running.store(false, Ordering::Release);
                rendezvous.wait();
                stats
            })
        };

        // Serial fold in group order: the aggregation order is part of
        // the byte-identity guarantee.
        let mut report = ClusterReport {
            n_groups: cfg.groups,
            n_cpus: cfg.groups * cfg.base.n_cpus,
            epoch: clock.epoch(),
            epochs: stats.epochs,
            admissions: stats.admissions,
            remote_ops: stats.remote_ops,
            remote_bytes: stats.remote_bytes,
            wall_end: SimTime::ZERO,
            cpu_busy: SimDuration::ZERO,
            cpu_idle: SimDuration::ZERO,
            overhead: SimDuration::ZERO,
            total_processes: 0,
            ios_issued: 0,
            cache: CacheStats::default(),
            disk_totals: DeviceStats::default(),
            obs: obs::ObsReport::default(),
            groups: Vec::with_capacity(cfg.groups),
        };
        let mut group_timelines = Vec::new();
        for cell in cells {
            let mut sim = cell.into_inner().expect("group lock");
            if let Some(tl) = sim.take_timeline() {
                group_timelines.push(tl);
            }
            let r = sim.finalize();
            let ios: u64 = r.processes.iter().map(|p| p.ios_issued).sum();
            report.wall_end = report.wall_end.max(r.wall_end);
            report.cpu_busy += r.cpu_busy;
            report.cpu_idle += r.cpu_idle;
            report.overhead += r.overhead;
            report.total_processes += r.processes.len();
            report.ios_issued += ios;
            report.cache.merge(&r.cache);
            report.disk_totals.merge(&r.disk_totals);
            report.obs.merge(&r.obs);
            report.groups.push(GroupSummary {
                wall_end: r.wall_end,
                cpu_busy: r.cpu_busy,
                cpu_idle: r.cpu_idle,
                overhead: r.overhead,
                processes: r.processes.len(),
                ios_issued: ios,
                cache: r.cache,
                disk_totals: r.disk_totals,
            });
        }
        // One cluster-aggregate timeline per run: groups advance through
        // the same barrier grid, so their series align; merge order is
        // group order — deterministic at any shard count.
        if let Some(tl) = obs::timeline::merge(group_timelines) {
            obs::timeline::publish(tl);
        }
        report
    }
}

fn lock<'a>(cell: &'a Mutex<Simulation>) -> std::sync::MutexGuard<'a, Simulation> {
    cell.lock().expect("group lock poisoned")
}

/// The serial heart of a sharded run. `advance` moves every group up to
/// the given barrier (inline or via the pool); everything else here runs
/// on one thread in an order that depends only on simulation state.
fn coordinate<F>(
    cells: &[Mutex<Simulation>],
    clock: EpochClock,
    parked: &mut VecDeque<Parked>,
    max_active: Option<usize>,
    mut advance: F,
) -> CoordStats
where
    F: FnMut(SimTime),
{
    let n_groups = cells.len();
    let cap = max_active.unwrap_or(usize::MAX).max(1);
    let mut active = 0usize;
    let mut stats = CoordStats::default();
    let mut batch: Vec<(SimTime, u64, usize, OutMsg)> = Vec::new();
    let mut barrier = SimTime::ZERO;

    admit_ready(cells, parked, &mut active, cap, SimTime::ZERO, &mut stats);
    loop {
        let min = cells.iter().filter_map(|c| lock(c).peek_next_time()).min();
        if let Some(min) = min {
            barrier = clock.next_barrier(min);
            stats.epochs += 1;
            advance(barrier);
        } else if parked.is_empty() {
            break;
        }
        // Deterministic cross-group merge: collect every outbox, order by
        // (time, seq, group), service at the barrier.
        batch.clear();
        for (g, cell) in cells.iter().enumerate() {
            lock(cell).drain_outbox(g, &mut batch);
        }
        let drained = batch.len();
        batch.sort_unstable_by_key(|&(t, seq, g, _)| (t, seq, g));
        for &(_, _, g, msg) in batch.iter() {
            match msg {
                OutMsg::Done => active = active.saturating_sub(1),
                OutMsg::RemoteIo { slot, file_id, offset, length, kind, sync } => {
                    let owner = range_owner(file_id, offset, n_groups);
                    let d = lock(&cells[owner]).service_remote(barrier, kind, file_id, offset, length);
                    stats.remote_ops += 1;
                    stats.remote_bytes += length;
                    if sync {
                        lock(&cells[g]).complete_remote(slot, barrier + d);
                    }
                }
            }
        }
        admit_ready(cells, parked, &mut active, cap, barrier, &mut stats);
        if min.is_none() && drained == 0 {
            // Queues empty, nothing arrived, yet processes are parked:
            // the admission scheduler can never make progress again.
            assert!(
                parked.is_empty(),
                "sharded run stalled with {} parked processes (active {active}, cap {cap})",
                parked.len()
            );
            break;
        }
    }
    stats
}

/// Admit parked processes FIFO while the global cap has room.
fn admit_ready(
    cells: &[Mutex<Simulation>],
    parked: &mut VecDeque<Parked>,
    active: &mut usize,
    cap: usize,
    now: SimTime,
    stats: &mut CoordStats,
) {
    while *active < cap {
        let Some(p) = parked.pop_front() else { return };
        lock(&cells[p.group])
            .admit_process_at(now, p.pid, p.name, p.feed)
            .expect("process validated when queued");
        *active += 1;
        stats.admissions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SHARED_FILE_BIT;
    use iotrace::{Direction, Synchrony};
    use sim_core::units::{KB, MB};

    fn reader_trace(n: u64, io: u64, gap: SimDuration) -> Trace {
        let mut t = Trace::new();
        let mut wall = SimTime::ZERO;
        for i in 0..n {
            wall += gap;
            t.push(IoEvent::logical(Direction::Read, 1, 1, i * io, io, wall, gap));
        }
        t
    }

    fn shared_reader_trace(n: u64, io: u64, gap: SimDuration) -> Trace {
        let mut t = Trace::new();
        let mut wall = SimTime::ZERO;
        for i in 0..n {
            wall += gap;
            let mut e = IoEvent::logical(
                Direction::Read,
                1,
                SHARED_FILE_BIT | 3,
                i * io,
                io,
                wall,
                gap,
            );
            e.sync = Synchrony::Sync;
            t.push(e);
        }
        t
    }

    fn small_cluster() -> ShardedSimulation {
        let mut cfg = ShardedConfig::new(3, SimConfig::buffered(4 * MB));
        cfg.epoch = SimDuration::from_millis(50);
        let mut c = ShardedSimulation::new(cfg);
        for g in 0..3 {
            for p in 0..4u32 {
                c.add_process(
                    g,
                    p + 1,
                    format!("g{g}p{p}"),
                    &reader_trace(40, 64 * KB, SimDuration::from_millis(3)),
                )
                .expect("valid");
            }
        }
        c.add_process(1, 99, "sharer", &shared_reader_trace(25, 64 * KB, SimDuration::from_millis(4)))
            .expect("valid");
        c
    }

    #[test]
    fn shard_count_cannot_change_the_report() {
        let json: Vec<String> = [1usize, 2, 3]
            .iter()
            .map(|&s| serde_json::to_string(&small_cluster().run(s)).expect("serializes"))
            .collect();
        assert_eq!(json[0], json[1]);
        assert_eq!(json[0], json[2]);
        // Oversized shard counts clamp to the group count.
        let big = serde_json::to_string(&small_cluster().run(64)).expect("serializes");
        assert_eq!(json[0], big);
    }

    #[test]
    fn single_group_cluster_matches_plain_simulation() {
        // With one group, no shared files, and no admission cap, the
        // epoch-chunked engine must reproduce Simulation::run exactly.
        let trace_a = reader_trace(60, 128 * KB, SimDuration::from_millis(2));
        let trace_b = reader_trace(45, 64 * KB, SimDuration::from_millis(3));
        let plain = {
            let mut sim = Simulation::new(SimConfig::buffered(8 * MB));
            sim.add_process(1, "a", &trace_a).expect("valid");
            sim.add_process(2, "b", &trace_b).expect("valid");
            sim.run()
        };
        let mut cluster =
            ShardedSimulation::new(ShardedConfig::new(1, SimConfig::buffered(8 * MB)));
        cluster.add_process(0, 1, "a", &trace_a).expect("valid");
        cluster.add_process(0, 2, "b", &trace_b).expect("valid");
        let sharded = cluster.run(1);
        assert_eq!(sharded.wall_end, plain.wall_end);
        assert_eq!(sharded.cpu_busy, plain.cpu_busy);
        assert_eq!(sharded.cpu_idle, plain.cpu_idle);
        assert_eq!(sharded.overhead, plain.overhead);
        assert_eq!(sharded.ios_issued, plain.processes.iter().map(|p| p.ios_issued).sum::<u64>());
        assert_eq!(sharded.cache.hit_blocks, plain.cache.hit_blocks);
        assert_eq!(sharded.disk_totals.total_bytes(), plain.disk_totals.total_bytes());
        assert_eq!(sharded.obs.scheduler, plain.obs.scheduler);
    }

    #[test]
    fn admission_cap_limits_concurrency_and_admits_everyone() {
        let mut cfg = ShardedConfig::new(2, SimConfig::buffered(4 * MB));
        cfg.max_active = Some(3);
        cfg.epoch = SimDuration::from_millis(20);
        let mut c = ShardedSimulation::new(cfg);
        for g in 0..2 {
            for p in 0..5u32 {
                c.add_process(g, p + 1, format!("g{g}p{p}"), &reader_trace(20, 64 * KB, SimDuration::from_millis(2)))
                    .expect("valid");
            }
        }
        let r = c.run(2);
        assert_eq!(r.total_processes, 10, "every parked process must eventually run");
        assert_eq!(r.admissions, 10);
        assert_eq!(r.ios_issued, 10 * 20);
        // Later admissions stagger the finishes, so the cluster runs
        // longer than an uncapped run would.
        assert!(r.epochs > 1);
    }

    #[test]
    fn shared_files_generate_remote_traffic() {
        let r = small_cluster().run(3);
        assert_eq!(r.remote_ops, 25);
        assert_eq!(r.remote_bytes, 25 * 64 * KB);
        // The sharer blocked on every remote read (sync, cross-group).
        assert!(r.obs.scheduler.sync_blocks >= 25);
    }

    #[test]
    fn parked_pid_collision_is_an_error_not_a_panic() {
        // Regression: a second process with the same pid on the same
        // group used to surface only at admission time, mid-run, where
        // the engine's Result had nowhere to go but a panic. The
        // duplicate must be rejected up front, leaving the cluster
        // usable.
        let mut c = ShardedSimulation::new(ShardedConfig::new(2, SimConfig::buffered(4 * MB)));
        let t = reader_trace(5, 4 * KB, SimDuration::from_millis(1));
        c.add_process(0, 7, "first", &t).expect("valid");
        assert_eq!(c.add_process(0, 7, "dup", &t), Err(AddProcessError::DuplicatePid(7)));
        // Same pid on a DIFFERENT group is fine: groups are separate
        // namespaces.
        c.add_process(1, 7, "other-group", &t).expect("valid");
        let r = c.run(1);
        assert_eq!(r.total_processes, 2);
    }

    #[test]
    fn unknown_group_rejected() {
        let mut c = ShardedSimulation::new(ShardedConfig::new(2, SimConfig::buffered(4 * MB)));
        let t = reader_trace(1, KB, SimDuration::from_millis(1));
        assert_eq!(c.add_process(2, 1, "oops", &t), Err(AddProcessError::UnknownGroup(2)));
        assert!(format!("{}", AddProcessError::UnknownGroup(2)).contains("group 2"));
    }

    #[test]
    fn empty_cluster_reports_zeroes() {
        let r = ShardedSimulation::new(ShardedConfig::new(4, SimConfig::buffered(4 * MB))).run(2);
        assert_eq!(r.total_processes, 0);
        assert_eq!(r.epochs, 0);
        assert_eq!(r.wall_end, SimTime::ZERO);
        assert_eq!(r.utilization(), 0.0);
    }

    #[test]
    fn empty_trace_processes_count_toward_admissions() {
        let mut cfg = ShardedConfig::new(1, SimConfig::buffered(4 * MB));
        cfg.max_active = Some(1);
        let mut c = ShardedSimulation::new(cfg);
        c.add_process(0, 1, "empty", &Trace::new()).expect("valid");
        c.add_process(0, 2, "real", &reader_trace(3, 4 * KB, SimDuration::from_millis(1)))
            .expect("valid");
        let r = c.run(1);
        assert_eq!(r.total_processes, 2);
        assert_eq!(r.admissions, 2);
        assert_eq!(r.ios_issued, 3);
    }
}
