//! Trace-driven process state.
//!
//! A process replays a **shared** `Arc<[IoEvent]>` by cursor. The slice
//! is immutable and may be handed to many processes (and many concurrent
//! simulations) at once; the per-process pid/file-id namespacing
//! (`file_id |= pid << 16`, `process_id = pid`) is applied on the fly in
//! [`ProcessState::advance`] instead of materializing a remapped copy of
//! the trace. This is what makes sweep replay zero-copy: one generated
//! event slice per (app, scale, seed) serves every sweep point.

use iotrace::IoEvent;
use sim_core::{SimDuration, SimTime};
use std::sync::Arc;

/// Where a process is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Runnable, waiting for the CPU.
    Ready,
    /// Currently holding the CPU.
    Running,
    /// Suspended awaiting an I/O completion.
    Blocked,
    /// Trace exhausted.
    Done,
}

/// One simulated process replaying a logical trace.
#[derive(Debug)]
pub struct ProcessState {
    /// Process id (namespaces file ids at replay time).
    pub pid: u32,
    /// Human-readable name for reports.
    pub name: String,
    /// The shared I/O events to replay, in order. Never copied or
    /// mutated; remapping happens per event in [`ProcessState::advance`].
    events: Arc<[IoEvent]>,
    /// Index of the next event to issue.
    cursor: usize,
    /// Compute remaining before the next event may issue.
    pub compute_remaining: SimDuration,
    /// Lifecycle state.
    pub state: ProcState,
    /// Total CPU consumed so far (compute + charged overheads).
    pub cpu_used: SimDuration,
    /// Total time spent blocked on I/O.
    pub blocked_time: SimDuration,
    /// When the process finished (valid once `Done`).
    pub finished_at: SimTime,
    /// When the process last became blocked (internal bookkeeping).
    pub blocked_since: SimTime,
    /// Number of I/O requests issued.
    pub ios_issued: u64,
}

impl ProcessState {
    /// Build from a shared event slice; the process starts Ready with the
    /// first event's `processTime` as its initial compute.
    pub fn new(pid: u32, name: impl Into<String>, events: Arc<[IoEvent]>) -> ProcessState {
        let first_compute =
            events.first().map(|e| e.process_time).unwrap_or(SimDuration::ZERO);
        let state = if events.is_empty() { ProcState::Done } else { ProcState::Ready };
        ProcessState {
            pid,
            name: name.into(),
            events,
            cursor: 0,
            compute_remaining: first_compute,
            state,
            cpu_used: SimDuration::ZERO,
            blocked_time: SimDuration::ZERO,
            finished_at: SimTime::ZERO,
            blocked_since: SimTime::ZERO,
            ios_issued: 0,
        }
    }

    /// Namespace an event into this process: file ids get the pid tag so
    /// two processes replaying the same slice never share cached data.
    #[inline]
    fn remap(&self, mut e: IoEvent) -> IoEvent {
        e.file_id |= self.pid << 16;
        e.process_id = self.pid;
        e
    }

    /// The event the process will issue once its compute drains, **as
    /// stored** (un-remapped: `file_id`/`process_id` are the generator's).
    /// Use only fields the remap does not touch (length, direction,
    /// timing); [`ProcessState::advance`] returns the namespaced event.
    pub fn next_event(&self) -> Option<&IoEvent> {
        self.events.get(self.cursor)
    }

    /// Consume the next event (it has just been issued) and load the
    /// compute gap preceding the following one. Returns the issued event
    /// with the pid/file-id remap applied.
    pub fn advance(&mut self) -> IoEvent {
        let ev = self.remap(self.events[self.cursor]);
        self.cursor += 1;
        self.ios_issued += 1;
        self.compute_remaining = self
            .events
            .get(self.cursor)
            .map(|e| e.process_time)
            .unwrap_or(SimDuration::ZERO);
        ev
    }

    /// True when every event has been issued.
    pub fn exhausted(&self) -> bool {
        self.cursor >= self.events.len()
    }

    /// Total CPU demand of the remaining trace (diagnostics).
    pub fn remaining_cpu_demand(&self) -> SimDuration {
        let tail: u64 =
            self.events[self.cursor.min(self.events.len())..]
                .iter()
                .map(|e| e.process_time.ticks())
                .sum();
        self.compute_remaining + SimDuration::from_ticks(tail)
            - self.events.get(self.cursor).map(|e| e.process_time).unwrap_or(SimDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotrace::Direction;

    fn events() -> Arc<[IoEvent]> {
        (0..3u64)
            .map(|i| {
                IoEvent::logical(
                    Direction::Read,
                    1,
                    1,
                    i * 512,
                    512,
                    SimTime::from_ticks(i * 1000),
                    SimDuration::from_ticks(100 * (i + 1)),
                )
            })
            .collect()
    }

    #[test]
    fn replays_in_order_with_compute_gaps() {
        let mut p = ProcessState::new(1, "t", events());
        assert_eq!(p.state, ProcState::Ready);
        assert_eq!(p.compute_remaining, SimDuration::from_ticks(100));
        let e1 = p.advance();
        assert_eq!(e1.offset, 0);
        assert_eq!(p.compute_remaining, SimDuration::from_ticks(200));
        p.advance();
        assert_eq!(p.compute_remaining, SimDuration::from_ticks(300));
        assert!(!p.exhausted());
        p.advance();
        assert!(p.exhausted());
        assert_eq!(p.ios_issued, 3);
    }

    #[test]
    fn empty_trace_is_born_done() {
        let p = ProcessState::new(1, "empty", Arc::from(Vec::new()));
        assert_eq!(p.state, ProcState::Done);
        assert!(p.exhausted());
        assert!(p.next_event().is_none());
    }

    #[test]
    fn advance_namespaces_file_and_process_ids() {
        let shared = events();
        let mut a = ProcessState::new(2, "a", shared.clone());
        let mut b = ProcessState::new(3, "b", shared.clone());
        let ea = a.advance();
        let eb = b.advance();
        assert_eq!(ea.file_id, 1 | 2 << 16);
        assert_eq!(ea.process_id, 2);
        assert_eq!(eb.file_id, 1 | 3 << 16);
        assert_eq!(eb.process_id, 3);
        // The shared slice itself is untouched.
        assert_eq!(shared[0].file_id, 1);
        assert_eq!(shared[0].process_id, 1);
    }

    #[test]
    fn next_event_is_unremapped() {
        let p = ProcessState::new(5, "t", events());
        assert_eq!(p.next_event().unwrap().file_id, 1);
    }

    #[test]
    fn remaining_demand_counts_tail() {
        let p = ProcessState::new(1, "t", events());
        // 100 + 200 + 300 ticks total.
        assert_eq!(p.remaining_cpu_demand(), SimDuration::from_ticks(600));
    }
}
