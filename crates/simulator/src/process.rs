//! Trace-driven process state.
//!
//! A process replays a **shared** `Arc<[IoEvent]>` by cursor. The slice
//! is immutable and may be handed to many processes (and many concurrent
//! simulations) at once; the per-process pid/file-id namespacing
//! (`file_id |= pid << 16`, `process_id = pid`) is applied on the fly in
//! [`ProcessState::advance`] instead of materializing a remapped copy of
//! the trace. This is what makes sweep replay zero-copy: one generated
//! event slice per (app, scale, seed) serves every sweep point.
//!
//! For workloads too large to hold resident, a process can instead pull
//! events from an [`EventSource`] — a streaming cursor (e.g. over a
//! binary frame file on disk) that keeps only the current decode block
//! in memory. The engine drives both feeds through the same
//! [`ProcessState`] API, so replay order — and therefore every report
//! byte — is identical between the two.

use iotrace::IoEvent;
use sim_core::{SimDuration, SimTime};
use std::sync::Arc;

/// A pull-based stream of trace events, decoded one at a time with
/// bounded memory.
///
/// The contract mirrors a peekable cursor: [`EventSource::current`]
/// returns the event at the cursor without consuming it (`None` once
/// exhausted; the source must hold it decoded so the engine can borrow
/// it between scheduling decisions), and [`EventSource::advance`] moves
/// past it. Events must come out in exactly the order a shared-slice
/// replay of the same trace would produce — the simulator's determinism
/// guarantee rides on it.
///
/// Implementations live with the storage layer (e.g. the experiment
/// crate's spilled-trace cursors); a decode failure mid-run has no
/// recovery path in the engine, so implementations should panic with a
/// descriptive message rather than silently truncate.
pub trait EventSource: Send + std::fmt::Debug {
    /// The event at the cursor, or `None` when the stream is exhausted.
    fn current(&self) -> Option<&IoEvent>;

    /// Move the cursor past the current event. Calling this when
    /// [`EventSource::current`] is `None` is a bug in the caller.
    fn advance(&mut self);

    /// Upper bound on `file_id` across the *entire* stream, including
    /// events not yet decoded — used to validate the 16-bit file-id
    /// namespace without a full decode (frame files carry this in their
    /// index footer). Return 0 for an empty stream.
    fn max_file_id(&self) -> u32;

    /// Total number of events in the stream (issued and pending).
    fn len(&self) -> u64;

    /// True when the stream has no events at all.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What a process replays: a resident shared slice or a streaming
/// source. Constructed by callers of `Simulation::add_process_shared` /
/// `add_process_streamed` (and their sharded equivalents).
#[derive(Debug)]
pub enum ProcessFeed {
    /// A resident, immutable, shareable event slice.
    Shared(Arc<[IoEvent]>),
    /// A streaming cursor decoding events on demand.
    Streamed(Box<dyn EventSource>),
}

impl ProcessFeed {
    /// First event whose `file_id` overflows the 16-bit namespace, if
    /// any — the shared arm reports the first offender exactly as the
    /// historical validation did; the streamed arm consults the source's
    /// index-backed bound instead of decoding.
    pub(crate) fn oversized_file_id(&self) -> Option<u32> {
        match self {
            ProcessFeed::Shared(events) => {
                events.iter().map(|e| e.file_id).find(|&id| id >= 1 << 16)
            }
            ProcessFeed::Streamed(src) => {
                Some(src.max_file_id()).filter(|&id| id >= 1 << 16)
            }
        }
    }
}

/// Where a process is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Runnable, waiting for the CPU.
    Ready,
    /// Currently holding the CPU.
    Running,
    /// Suspended awaiting an I/O completion.
    Blocked,
    /// Trace exhausted.
    Done,
}

/// One simulated process replaying a logical trace.
#[derive(Debug)]
pub struct ProcessState {
    /// Process id (namespaces file ids at replay time).
    pub pid: u32,
    /// Human-readable name for reports.
    pub name: String,
    /// The I/O events to replay, in order: a shared slice walked by
    /// cursor, or a streaming source. Never copied or mutated; remapping
    /// happens per event in [`ProcessState::advance`].
    feed: Feed,
    /// Compute remaining before the next event may issue.
    pub compute_remaining: SimDuration,
    /// Lifecycle state.
    pub state: ProcState,
    /// Total CPU consumed so far (compute + charged overheads).
    pub cpu_used: SimDuration,
    /// Total time spent blocked on I/O.
    pub blocked_time: SimDuration,
    /// When the process finished (valid once `Done`).
    pub finished_at: SimTime,
    /// When the process last became blocked (internal bookkeeping).
    pub blocked_since: SimTime,
    /// Number of I/O requests issued.
    pub ios_issued: u64,
}

/// Internal feed state: the shared arm carries its own cursor, the
/// streamed arm delegates to the source's.
#[derive(Debug)]
enum Feed {
    Shared { events: Arc<[IoEvent]>, cursor: usize },
    Streamed(Box<dyn EventSource>),
}

impl Feed {
    fn current(&self) -> Option<&IoEvent> {
        match self {
            Feed::Shared { events, cursor } => events.get(*cursor),
            Feed::Streamed(src) => src.current(),
        }
    }

    fn advance(&mut self) {
        match self {
            Feed::Shared { cursor, .. } => *cursor += 1,
            Feed::Streamed(src) => src.advance(),
        }
    }
}

impl ProcessState {
    /// Build from a shared event slice; the process starts Ready with the
    /// first event's `processTime` as its initial compute.
    pub fn new(pid: u32, name: impl Into<String>, events: Arc<[IoEvent]>) -> ProcessState {
        ProcessState::from_feed(pid, name, ProcessFeed::Shared(events))
    }

    /// Build from either feed kind; the process starts Ready with the
    /// first event's `processTime` as its initial compute (Done when the
    /// feed is empty).
    pub fn from_feed(pid: u32, name: impl Into<String>, feed: ProcessFeed) -> ProcessState {
        let feed = match feed {
            ProcessFeed::Shared(events) => Feed::Shared { events, cursor: 0 },
            ProcessFeed::Streamed(src) => Feed::Streamed(src),
        };
        let first_compute =
            feed.current().map(|e| e.process_time).unwrap_or(SimDuration::ZERO);
        let state = if feed.current().is_none() { ProcState::Done } else { ProcState::Ready };
        ProcessState {
            pid,
            name: name.into(),
            feed,
            compute_remaining: first_compute,
            state,
            cpu_used: SimDuration::ZERO,
            blocked_time: SimDuration::ZERO,
            finished_at: SimTime::ZERO,
            blocked_since: SimTime::ZERO,
            ios_issued: 0,
        }
    }

    /// Namespace an event into this process: file ids get the pid tag so
    /// two processes replaying the same slice never share cached data.
    #[inline]
    fn remap(&self, mut e: IoEvent) -> IoEvent {
        e.file_id |= self.pid << 16;
        e.process_id = self.pid;
        e
    }

    /// The event the process will issue once its compute drains, **as
    /// stored** (un-remapped: `file_id`/`process_id` are the generator's).
    /// Use only fields the remap does not touch (length, direction,
    /// timing); [`ProcessState::advance`] returns the namespaced event.
    pub fn next_event(&self) -> Option<&IoEvent> {
        self.feed.current()
    }

    /// Consume the next event (it has just been issued) and load the
    /// compute gap preceding the following one. Returns the issued event
    /// with the pid/file-id remap applied.
    pub fn advance(&mut self) -> IoEvent {
        let ev = self.remap(*self.feed.current().expect("advance past trace end"));
        self.feed.advance();
        self.ios_issued += 1;
        self.compute_remaining =
            self.feed.current().map(|e| e.process_time).unwrap_or(SimDuration::ZERO);
        ev
    }

    /// True when every event has been issued.
    pub fn exhausted(&self) -> bool {
        self.feed.current().is_none()
    }

    /// Total CPU demand of the remaining trace (diagnostics). Exact for
    /// shared-slice feeds; a streamed feed reports only the compute
    /// already loaded at the cursor (summing the tail would force a full
    /// decode, defeating the bounded-memory point).
    pub fn remaining_cpu_demand(&self) -> SimDuration {
        match &self.feed {
            Feed::Shared { events, cursor } => {
                let tail: u64 = events[(*cursor).min(events.len())..]
                    .iter()
                    .map(|e| e.process_time.ticks())
                    .sum();
                self.compute_remaining + SimDuration::from_ticks(tail)
                    - events.get(*cursor).map(|e| e.process_time).unwrap_or(SimDuration::ZERO)
            }
            Feed::Streamed(_) => self.compute_remaining,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotrace::Direction;

    fn events() -> Arc<[IoEvent]> {
        (0..3u64)
            .map(|i| {
                IoEvent::logical(
                    Direction::Read,
                    1,
                    1,
                    i * 512,
                    512,
                    SimTime::from_ticks(i * 1000),
                    SimDuration::from_ticks(100 * (i + 1)),
                )
            })
            .collect()
    }

    #[test]
    fn replays_in_order_with_compute_gaps() {
        let mut p = ProcessState::new(1, "t", events());
        assert_eq!(p.state, ProcState::Ready);
        assert_eq!(p.compute_remaining, SimDuration::from_ticks(100));
        let e1 = p.advance();
        assert_eq!(e1.offset, 0);
        assert_eq!(p.compute_remaining, SimDuration::from_ticks(200));
        p.advance();
        assert_eq!(p.compute_remaining, SimDuration::from_ticks(300));
        assert!(!p.exhausted());
        p.advance();
        assert!(p.exhausted());
        assert_eq!(p.ios_issued, 3);
    }

    #[test]
    fn empty_trace_is_born_done() {
        let p = ProcessState::new(1, "empty", Arc::from(Vec::new()));
        assert_eq!(p.state, ProcState::Done);
        assert!(p.exhausted());
        assert!(p.next_event().is_none());
    }

    #[test]
    fn advance_namespaces_file_and_process_ids() {
        let shared = events();
        let mut a = ProcessState::new(2, "a", shared.clone());
        let mut b = ProcessState::new(3, "b", shared.clone());
        let ea = a.advance();
        let eb = b.advance();
        assert_eq!(ea.file_id, 1 | 2 << 16);
        assert_eq!(ea.process_id, 2);
        assert_eq!(eb.file_id, 1 | 3 << 16);
        assert_eq!(eb.process_id, 3);
        // The shared slice itself is untouched.
        assert_eq!(shared[0].file_id, 1);
        assert_eq!(shared[0].process_id, 1);
    }

    #[test]
    fn next_event_is_unremapped() {
        let p = ProcessState::new(5, "t", events());
        assert_eq!(p.next_event().unwrap().file_id, 1);
    }

    #[test]
    fn remaining_demand_counts_tail() {
        let p = ProcessState::new(1, "t", events());
        // 100 + 200 + 300 ticks total.
        assert_eq!(p.remaining_cpu_demand(), SimDuration::from_ticks(600));
    }

    /// A minimal in-memory [`EventSource`] for exercising the streamed
    /// feed without a frame file.
    #[derive(Debug)]
    struct VecSource {
        events: Vec<IoEvent>,
        pos: usize,
    }

    impl EventSource for VecSource {
        fn current(&self) -> Option<&IoEvent> {
            self.events.get(self.pos)
        }

        fn advance(&mut self) {
            self.pos += 1;
        }

        fn max_file_id(&self) -> u32 {
            self.events.iter().map(|e| e.file_id).max().unwrap_or(0)
        }

        fn len(&self) -> u64 {
            self.events.len() as u64
        }
    }

    #[test]
    fn streamed_feed_replays_identically_to_shared() {
        let shared = events();
        let mut a = ProcessState::new(4, "shared", shared.clone());
        let mut b = ProcessState::from_feed(
            4,
            "streamed",
            ProcessFeed::Streamed(Box::new(VecSource { events: shared.to_vec(), pos: 0 })),
        );
        assert_eq!(a.compute_remaining, b.compute_remaining);
        while !a.exhausted() {
            assert_eq!(a.next_event(), b.next_event());
            assert_eq!(a.advance(), b.advance());
            assert_eq!(a.compute_remaining, b.compute_remaining);
        }
        assert!(b.exhausted());
    }

    #[test]
    fn empty_streamed_feed_is_born_done() {
        let p = ProcessState::from_feed(
            1,
            "empty",
            ProcessFeed::Streamed(Box::new(VecSource { events: Vec::new(), pos: 0 })),
        );
        assert_eq!(p.state, ProcState::Done);
        assert!(p.exhausted());
    }
}
