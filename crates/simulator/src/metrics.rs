//! Simulation results: the quantities the paper's §6 figures and claims
//! are built from.

use buffer_cache::CacheStats;
use serde::{Deserialize, Serialize};
use sim_core::{RateSeries, SimDuration, SimTime};
use storage_model::DeviceStats;

/// Per-process outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcessMetrics {
    /// Process id.
    pub pid: u32,
    /// Name (e.g. "venus#1").
    pub name: String,
    /// CPU consumed (compute + charged overheads).
    pub cpu_used: SimDuration,
    /// Time spent blocked on I/O.
    pub blocked_time: SimDuration,
    /// Wall-clock completion time.
    pub finished_at: SimTime,
    /// Requests issued.
    pub ios_issued: u64,
}

/// Whole-run outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Wall-clock time at which the last process finished.
    pub wall_end: SimTime,
    /// Number of CPUs simulated (1 in the paper's configuration).
    pub n_cpus: usize,
    /// CPU busy time across all CPUs (compute + FS code + context
    /// switches + interrupt service).
    pub cpu_busy: SimDuration,
    /// CPU idle time: wall time during which no process was runnable.
    pub cpu_idle: SimDuration,
    /// Of `cpu_busy`, the part that was pure overhead (FS code, context
    /// switches, interrupts).
    pub overhead: SimDuration,
    /// Per-process outcomes.
    pub processes: Vec<ProcessMetrics>,
    /// Cache statistics snapshot (zeroed when uncached).
    pub cache: CacheStats,
    /// Aggregate disk-farm statistics.
    pub disk_totals: DeviceStats,
    /// Wall-binned application→cache traffic (logical demand).
    pub logical_series: RateSeries,
    /// Wall-binned cache→disk read traffic (demand misses + prefetch).
    pub disk_read_series: RateSeries,
    /// Wall-binned cache→disk write traffic (flushes, writebacks,
    /// write-through).
    pub disk_write_series: RateSeries,
    /// Per-subsystem observability counters (scheduler, cache index,
    /// timing wheel, disk seeks). Always collected; identical whether or
    /// not span profiling is enabled.
    pub obs: obs::ObsReport,
}

impl SimReport {
    /// CPU utilization over the run: busy / (CPUs × wall).
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall_end.ticks() * self.n_cpus.max(1) as u64;
        if capacity == 0 {
            return 0.0;
        }
        self.cpu_busy.ticks() as f64 / capacity as f64
    }

    /// Idle seconds — the Figure 8 y-axis.
    pub fn idle_secs(&self) -> f64 {
        self.cpu_idle.as_secs_f64()
    }

    /// Wall-clock seconds for the whole run.
    pub fn wall_secs(&self) -> f64 {
        self.wall_end.as_secs_f64()
    }

    /// The conservation identity the property tests check:
    /// busy + idle = CPUs × wall (within one tick of rounding).
    pub fn check_time_conservation(&self) {
        let lhs = self.cpu_busy.ticks() + self.cpu_idle.ticks();
        let rhs = self.wall_end.ticks() * self.n_cpus.max(1) as u64;
        assert!(
            lhs.abs_diff(rhs) <= 1,
            "busy {} + idle {} != {} cpus x wall {}",
            self.cpu_busy.ticks(),
            self.cpu_idle.ticks(),
            self.n_cpus,
            self.wall_end.ticks()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_and_conservation() {
        let r = SimReport {
            wall_end: SimTime::from_secs(100),
            n_cpus: 1,
            cpu_busy: SimDuration::from_secs(80),
            cpu_idle: SimDuration::from_secs(20),
            overhead: SimDuration::from_secs(2),
            processes: vec![],
            cache: CacheStats::default(),
            disk_totals: DeviceStats::default(),
            logical_series: RateSeries::per_second(),
            disk_read_series: RateSeries::per_second(),
            disk_write_series: RateSeries::per_second(),
            obs: obs::ObsReport::default(),
        };
        assert!((r.utilization() - 0.8).abs() < 1e-12);
        assert_eq!(r.idle_secs(), 20.0);
        r.check_time_conservation();
    }

    #[test]
    #[should_panic(expected = "cpus x wall")]
    fn conservation_violation_detected() {
        let r = SimReport {
            wall_end: SimTime::from_secs(100),
            n_cpus: 1,
            cpu_busy: SimDuration::from_secs(10),
            cpu_idle: SimDuration::from_secs(20),
            overhead: SimDuration::ZERO,
            processes: vec![],
            cache: CacheStats::default(),
            disk_totals: DeviceStats::default(),
            logical_series: RateSeries::per_second(),
            disk_read_series: RateSeries::per_second(),
            disk_write_series: RateSeries::per_second(),
            obs: obs::ObsReport::default(),
        };
        r.check_time_conservation();
    }

    #[test]
    fn zero_wall_utilization_is_zero() {
        let r = SimReport {
            wall_end: SimTime::ZERO,
            n_cpus: 1,
            cpu_busy: SimDuration::ZERO,
            cpu_idle: SimDuration::ZERO,
            overhead: SimDuration::ZERO,
            processes: vec![],
            cache: CacheStats::default(),
            disk_totals: DeviceStats::default(),
            logical_series: RateSeries::per_second(),
            disk_read_series: RateSeries::per_second(),
            disk_write_series: RateSeries::per_second(),
            obs: obs::ObsReport::default(),
        };
        assert_eq!(r.utilization(), 0.0);
    }
}
