//! Exercise the appendix trace format end to end: generate an
//! application trace, push it through the emulated `procstat` collection
//! pipeline, serialize it in the compressed ASCII format, read it back,
//! and report the compression the format achieves.
//!
//! ```text
//! cargo run --release --example trace_roundtrip
//! ```

use miller_core::{read_trace, write_trace, AppKind, Study};
use std::io::Cursor;

fn main() {
    // Gather ccm's trace "on the Cray": through the library shim,
    // packetized to procstat, then reconstructed (§4.3).
    let study = Study::app(AppKind::Ccm).seed(7).scale(8).through_procstat();
    let trace = study.trace();
    println!(
        "ccm trace: {} I/O records, {:.1} MB of I/O",
        trace.io_count(),
        trace.total_bytes() as f64 / (1024.0 * 1024.0)
    );

    // Serialize in the paper's compressed ASCII format.
    let mut encoded = Vec::new();
    write_trace(&trace, &mut encoded).expect("encode");
    let bytes_per_record = encoded.len() as f64 / trace.io_count() as f64;
    println!(
        "compressed ASCII: {} bytes total, {:.1} bytes/record",
        encoded.len(),
        bytes_per_record
    );

    // Compare with a naive uncompressed rendering (all 10 fields,
    // absolute times).
    let naive: usize = trace
        .events()
        .map(|e| {
            format!(
                "{} {} {} {} {} {} {} {} {} {}\n",
                e.record_type().to_bits(),
                0,
                e.offset,
                e.length,
                e.start.ticks(),
                e.completion.ticks(),
                e.op_id,
                e.file_id,
                e.process_id,
                e.process_time.ticks()
            )
            .len()
        })
        .sum();
    println!(
        "naive uncompressed would be {} bytes — compression saves {:.0}%",
        naive,
        (1.0 - encoded.len() as f64 / naive as f64) * 100.0
    );

    // Read it back and verify losslessness.
    let decoded = read_trace(Cursor::new(&encoded)).expect("decode");
    assert_eq!(decoded, trace, "the codec must be lossless");
    println!("round-trip verified: decoded trace is bit-identical");

    // The paper's observation that ASCII beats binary for these traces:
    // most delta fields are 1-2 digits.
    let short_fields = encoded
        .split(|&b| b == b' ' || b == b'\n')
        .filter(|f| !f.is_empty() && f.len() <= 4)
        .count();
    let total_fields = encoded
        .split(|&b| b == b' ' || b == b'\n')
        .filter(|f| !f.is_empty())
        .count();
    println!(
        "{:.0}% of printed fields are at most 4 characters — variable-length \
         ASCII beats fixed 4-byte binary fields, the appendix's observation",
        short_fields as f64 / total_fields as f64 * 100.0
    );
}
