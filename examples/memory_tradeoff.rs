//! The memory/I-O tradeoff that shaped the traced programs (§2.2, §3).
//!
//! UNICOS queued batch jobs by memory footprint, so "turnaround time is
//! shortest for the application which requires the least main memory.
//! Programmers take advantage of this by structuring their program to
//! use smaller in-memory data structures while staging data to/from SSD
//! or disk." gcm kept everything in memory (tiny I/O); venus went to the
//! other extreme (tiny memory, huge I/O); ccm sat in between.
//!
//! This example builds one climate-model computation at three in-memory
//! array sizes and shows the resulting I/O demand, Amdahl balance, and
//! solo CPU utilization at a fixed cache — the whole §3 story in one
//! table.
//!
//! ```text
//! cargo run --release --example memory_tradeoff
//! ```

use miller_core::render::{num, pct, TextTable};
use miller_core::{
    generate, AmdahlReport, AppSpec, AppSummary, BatchMachine, CampaignBuilder, CycleDef,
    FileDef, Job, SweepOrder, Synchrony, YMP_DEFAULT_MIPS,
};
use sim_core::units::{MB, MEGAWORD_BYTES};
use sim_core::{SimDuration, SimTime};
use workload::LatencyModel;

/// One computation, parameterized by how much of its 192 MB problem
/// lives in memory. What doesn't fit is staged through the file system
/// every cycle.
fn climate_model(name: &str, in_memory_mb: u64) -> AppSpec {
    let problem_mb: u64 = 192;
    let staged = problem_mb.saturating_sub(in_memory_mb);
    let cycles = 40;
    AppSpec {
        name: name.to_string(),
        pid: 1,
        files: vec![FileDef::new(1, (staged.max(1)) * MB, "/scratch/model/staged")],
        cpu_time: SimDuration::from_secs(120),
        init_read: (8 * MB, 512 * 1024, 1),
        final_write: (8 * MB, 512 * 1024, 1),
        cycles,
        cycle: CycleDef {
            // Each cycle reads and rewrites the staged slice once.
            read_bytes: staged * MB,
            write_bytes: staged * MB,
            read_io: 512 * 1024,
            write_io: 512 * 1024,
            order: SweepOrder::Sequential,
            interleave_run: 1,
            sweep_cpu_frac: 0.5,
        },
        checkpoint: None,
        sync: Synchrony::Sync,
        latency: LatencyModel::ymp_disk(),
        compute_jitter: 0.05,
    }
}

fn main() {
    println!(
        "One 192 MB climate computation, three memory footprints\n\
         (the §2.2 queue game: less memory = shorter queue = more I/O):\n"
    );
    let mut t = TextTable::new(&[
        "variant", "memory MB", "staged MB/cycle", "MB/s", "Amdahl ratio", "solo util @32MB",
    ]);
    for (name, mem) in [("gcm-like", 192u64), ("ccm-like", 128), ("venus-like", 16)] {
        let spec = climate_model(name, mem);
        let trace = generate(&spec, 7);
        let summary = AppSummary::from_trace(&trace);
        let amdahl = AmdahlReport::of(&summary, YMP_DEFAULT_MIPS);
        let sim = CampaignBuilder::buffered_mb(32).trace(name, trace).run();
        t.row(vec![
            name.to_string(),
            mem.to_string(),
            num((192 - mem.min(192)) as f64),
            num(summary.mb_per_sec),
            num(amdahl.balance_ratio),
            pct(sim.utilization()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The memory-rich variant barely touches the file system and runs\n\
         the CPU flat out; the memory-starved variant demands tens of MB/s\n\
         (past Amdahl's balance point of {:.0} MB/s for a {:.0}-MIPS CPU)\n\
         and stalls on staging unless the buffer hierarchy absorbs it —\n\
         which is exactly why the paper's SSD result matters.\n",
        YMP_DEFAULT_MIPS / 8.0,
        YMP_DEFAULT_MIPS
    );

    // --- And now the queue game itself (§2.2) -------------------------
    // Submit each variant to a UNICOS-style batch machine that already
    // has a backlog of big jobs. The small-memory variant skips the
    // backlog entirely; the big variant waits behind it. run_time comes
    // from the simulated solo wall time of each variant.
    let machine = BatchMachine::ymp_default();
    let mut jobs: Vec<Job> = Vec::new();
    // Backlog: three 60 MW jobs monopolizing the large queue, two 30 MW
    // jobs in the medium queue.
    for i in 0..3 {
        jobs.push(Job {
            name: format!("backlog-large-{i}"),
            memory: 60 * MEGAWORD_BYTES,
            run_time: SimDuration::from_secs(400),
            submitted: SimTime::ZERO,
        });
    }
    for i in 0..2 {
        jobs.push(Job {
            name: format!("backlog-medium-{i}"),
            memory: 30 * MEGAWORD_BYTES,
            run_time: SimDuration::from_secs(400),
            submitted: SimTime::ZERO,
        });
    }
    for (name, mem) in [("gcm-like", 192u64), ("ccm-like", 128), ("venus-like", 16)] {
        let spec = climate_model(name, mem);
        let trace = generate(&spec, 7);
        let sim = CampaignBuilder::buffered_mb(32).trace(name, trace).run();
        // Program memory = its in-memory array (in MW; 1 MW = 8 MB).
        jobs.push(Job {
            name: name.to_string(),
            memory: (mem * MB).div_ceil(MEGAWORD_BYTES).max(1) * MEGAWORD_BYTES,
            run_time: SimDuration::from_secs_f64(sim.wall_secs()),
            submitted: SimTime::from_secs(10),
        });
    }
    let outcomes = machine.run(&jobs).expect("all jobs fit some queue");
    println!("Batch turnaround with a loaded machine (backlog of big jobs):");
    let mut t2 = TextTable::new(&["job", "queue", "queued (s)", "ran (s)", "turnaround (s)"]);
    for name in ["gcm-like", "ccm-like", "venus-like"] {
        let o = outcomes.iter().find(|o| o.name == name).expect("job completed");
        t2.row(vec![
            o.name.clone(),
            o.queue.clone(),
            num(o.queued.as_secs_f64()),
            num(o.finished.saturating_since(o.started).as_secs_f64()),
            num(o.turnaround.as_secs_f64()),
        ]);
    }
    println!("{}", t2.render());
    println!(
        "venus's author traded run time for queue time: the tiny-memory\n\
         variant runs longest but starts immediately, while the in-memory\n\
         variant waits behind the large-queue backlog — \"turnaround time\n\
         is shortest for the application which requires the least main\n\
         memory\" (§2.2)."
    );
}
