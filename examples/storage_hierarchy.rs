//! The NASA Ames storage hierarchy (§2.2): main memory, SSD, disk farm,
//! and the Mass Storage System's nearline tape — and why staging matters.
//!
//! ```text
//! cargo run --release --example storage_hierarchy
//! ```

use miller_core::{BlockDevice, DiskModel, SsdModel, TapeModel};
use sim_core::units::MB;
use sim_core::SimTime;
use storage_model::AccessKind;

fn main() {
    let mut ssd = SsdModel::ymp();
    let mut disk = DiskModel::ymp();
    let mut tape = TapeModel::mss();

    println!("Latency to fetch a data slab from each tier (cold, then warm):\n");
    println!("{:<12} {:>14} {:>14} {:>14}", "tier", "64 KB", "1 MB", "16 MB");

    for (name, dev) in [
        ("ssd", &mut ssd as &mut dyn BlockDevice),
        ("disk", &mut disk as &mut dyn BlockDevice),
        ("mss-tape", &mut tape as &mut dyn BlockDevice),
    ] {
        let mut cells = Vec::new();
        for (i, size) in [64 * 1024u64, MB, 16 * MB].iter().enumerate() {
            // Jump to a fresh region each time: worst-case positioning.
            let t = dev.access(
                SimTime::from_secs(i as u64),
                AccessKind::Read,
                (i as u64 + 1) * 100 * MB,
                *size,
            );
            cells.push(format!("{:>12.3}ms", t.as_millis_f64()));
        }
        println!("{name:<12} {}", cells.join(" "));
    }

    println!("\nSequential streaming after positioning (per MB):");
    let warm_disk = disk.access(SimTime::from_secs(10), AccessKind::Read, 300 * MB + 16 * MB, MB);
    let warm_tape = tape.access(SimTime::from_secs(10), AccessKind::Read, 300 * MB + 16 * MB, MB);
    let warm_ssd = ssd.access(SimTime::from_secs(10), AccessKind::Read, 0, MB);
    println!(
        "  ssd {:.2} ms | disk {:.1} ms | tape {:.1} ms",
        warm_ssd.as_millis_f64(),
        warm_disk.as_millis_f64(),
        warm_tape.as_millis_f64()
    );

    println!(
        "\nThe hierarchy's moral (§6.4): \"provide as much SSD storage as\n\
         possible, and maintain a smaller main memory cache\" — the SSD\n\
         streams at ~1 GB/s with zero positioning cost, the disks at\n\
         9.6 MB/s with up to 15 ms seeks, and a cold tape access pays a\n\
         {}-second robot mount before the first byte moves.",
        tape.params().mount.as_secs_f64()
    );
    println!("tape mounts so far: {}", tape.mounts());
}
