//! A miniature of the paper's §6 buffering study: sweep the cache size
//! for two venus copies, then toggle write-behind, then try the SSD.
//!
//! ```text
//! cargo run --release --example buffering_study [-- --full]
//! ```

use miller_core::render::{num, pct, TextTable};
use miller_core::{AppKind, CampaignBuilder, WritePolicy};

fn two_venus(mb: u64, scale: u32) -> miller_core::SimReport {
    CampaignBuilder::buffered_mb(mb)
        .app(AppKind::Venus)
        .app(AppKind::Venus)
        .seed(42)
        .scale(scale)
        .run()
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full { 1 } else { 8 };

    println!("== Figure 8 in miniature: idle time vs cache size (2 x venus) ==");
    let mut t = TextTable::new(&["cache MB", "idle (s)", "utilization", "hit ratio"]);
    for mb in [4u64, 16, 64, 256] {
        let r = two_venus(mb, scale);
        t.row(vec![
            mb.to_string(),
            num(r.idle_secs()),
            pct(r.utilization()),
            pct(r.cache.hit_ratio()),
        ]);
    }
    println!("{}", t.render());

    println!("== Write-behind vs write-through at 128 MB (the paper's 211 s -> 1 s) ==");
    for (label, policy) in [
        ("write-through", WritePolicy::WriteThrough),
        ("write-behind", WritePolicy::WriteBehind),
        ("sprite 30s delay", WritePolicy::sprite()),
    ] {
        let r = CampaignBuilder::buffered_mb(128)
            .configure(|c| c.cache.as_mut().unwrap().write_policy = policy)
            .app(AppKind::Venus)
            .app(AppKind::Venus)
            .seed(42)
            .scale(scale)
            .run();
        println!("{label:>18}: idle {:>8}s  utilization {}", num(r.idle_secs()), pct(r.utilization()));
    }

    println!("\n== The SSD as an OS-managed cache (§6.3) ==");
    let r = CampaignBuilder::ssd()
        .app(AppKind::Venus)
        .app(AppKind::Venus)
        .seed(42)
        .scale(scale)
        .run();
    println!(
        "2 x venus on the 32 MW SSD share: idle {}s, utilization {} — \
         \"one or two applications were sufficient to fully utilize a Cray Y-MP CPU\"",
        num(r.idle_secs()),
        pct(r.utilization())
    );
}
