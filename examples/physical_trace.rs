//! Expand a logical trace into the mixed logical + physical trace the
//! appendix format describes, and measure the amplification.
//!
//! The paper gathered only logical traces on the Cray ("we included
//! provisions for our trace format to include physical I/Os as well");
//! this example exercises that other half: extent-based file layout,
//! indirect-block metadata reads, and the `operationId` linkage between
//! each system call and the device I/Os it generated.
//!
//! ```text
//! cargo run --release --example physical_trace
//! ```

use miller_core::{
    analyze_seeks, measure_amplification, measure_compression, translate_to_physical,
    write_trace, AppKind, FsConfig, FsLayout, Scope, Study,
};

fn main() {
    let logical = Study::app(AppKind::Ccm).seed(11).scale(8).trace();
    println!(
        "logical trace: {} records, {:.1} MB requested",
        logical.io_count(),
        logical.total_bytes() as f64 / (1024.0 * 1024.0)
    );

    let mut layout = FsLayout::new(FsConfig::default());
    let mixed = translate_to_physical(&logical, &mut layout);
    let n_logical = mixed.events().filter(|e| e.scope == Scope::Logical).count();
    let n_physical = mixed.events().filter(|e| e.scope == Scope::Physical).count();
    println!(
        "translated: {} logical + {} physical records ({}-disk farm, 256 KB extents)",
        n_logical, n_physical, layout.config().n_disks
    );

    let amp = measure_amplification(&mixed);
    println!(
        "amplification: {:.3}x data (block alignment), {:.2}% metadata, disk imbalance {:.2}",
        amp.data_amplification(),
        amp.metadata_fraction() * 100.0,
        amp.disk_imbalance()
    );
    println!("per-disk load (MB):");
    let mut disks: Vec<_> = amp.per_disk_bytes.iter().collect();
    disks.sort();
    for (disk, bytes) in disks {
        println!("  disk {}: {:.1}", disk, *bytes as f64 / (1024.0 * 1024.0));
    }

    // The op-id linkage in action: pick one operation and show its chain.
    let sample_op = mixed
        .events()
        .find(|e| e.scope == Scope::Logical)
        .map(|e| e.op_id)
        .expect("trace has logical records");
    println!("\noperation {sample_op} chain (logical record + the physical I/Os it generated):");
    for e in mixed.events().filter(|e| e.op_id == sample_op) {
        println!(
            "  {:?} {:?} {:?} file/disk {} offset {} length {}",
            e.scope, e.kind, e.dir, e.file_id, e.offset, e.length
        );
    }

    // Device-level seek behavior: ccm's two interleaved staging files
    // share disks, so most device accesses pay a short hop between the
    // files' extents — §6.2's point that "the seeks required by
    // interleaving accesses … inserted extra delays" even when every
    // per-file stream is perfectly sequential.
    let seeks = analyze_seeks(&mixed);
    println!(
        "\ndevice-level: {:.1}% of physical accesses are seek-free; mean seek {:.2} MB\n\
         (interleaved files share disks, so logical sequentiality does not\n\
         survive to the device — the paper's venus seek penalty, in data)",
        seeks.sequential_fraction() * 100.0,
        seeks.mean_seek_distance / (1024.0 * 1024.0)
    );

    // Mixed traces still round-trip through the compressed codec.
    let report = measure_compression(&mixed).expect("mixed trace encodes");
    let mut buf = Vec::new();
    write_trace(&mixed, &mut buf).expect("encode");
    println!(
        "\nmixed trace encodes at {:.1} bytes/record ({:.0}% smaller than fixed binary)",
        report.bytes_per_record(),
        report.savings_vs_binary() * 100.0
    );
}
