//! The §5.1 checkpoint arithmetic, live: "For a program that saves 40 MB
//! of state every 20 CPU seconds, the average I/O rate is only 2 MB/sec."
//!
//! Builds a custom checkpointing application with the workload DSL, runs
//! the taxonomy classifier on its trace, and simulates it behind a
//! write-behind cache to show checkpoints are nearly free.
//!
//! ```text
//! cargo run --release --example checkpointing
//! ```

use miller_core::{
    classify_trace, generate, AppKind, AppSpec, CampaignBuilder, CheckpointDef, CycleDef, FileDef,
    IoClass, SweepOrder, Synchrony,
};
use sim_core::units::MB;
use sim_core::SimDuration;
use workload::LatencyModel;

fn checkpointer() -> AppSpec {
    AppSpec {
        name: "checkpointer".into(),
        pid: 1,
        files: vec![FileDef::new(1, 64 * MB, "/scratch/ckpt/field")],
        cpu_time: SimDuration::from_secs(400),
        init_read: (50 * MB, 512 * 1024, 1),
        final_write: (100 * MB, 512 * 1024, 1),
        cycles: 20, // 20 cycles x 20 s = 400 s
        cycle: CycleDef {
            read_bytes: 0,
            write_bytes: 0,
            read_io: 1,
            write_io: 1,
            order: SweepOrder::Sequential,
            interleave_run: 1,
            sweep_cpu_frac: 0.0,
        },
        checkpoint: Some(CheckpointDef {
            bytes: 40 * MB,
            io_size: 2 * MB,
            every_cycles: 1, // every cycle = every 20 CPU seconds
            file_id: 9,
        }),
        sync: Synchrony::Sync,
        latency: LatencyModel::ymp_disk(),
        compute_jitter: 0.05,
    }
}

fn main() {
    let spec = checkpointer();
    let trace = generate(&spec, 42);
    let cpu: f64 = trace.events().map(|e| e.process_time.as_secs_f64()).sum();
    let total_mb = trace.total_bytes() as f64 / MB as f64;
    println!(
        "checkpointer: {:.0} MB of I/O over {:.0} CPU seconds = {:.2} MB/s average",
        total_mb,
        cpu,
        total_mb / cpu
    );
    println!("(the paper's §5.1 arithmetic gives 2 MB/s for the checkpoint share alone)");

    let classes = classify_trace(&trace);
    println!("\nI/O taxonomy by class:");
    for class in [IoClass::Required, IoClass::Checkpoint, IoClass::DataSwap] {
        println!(
            "  {:?}: {:.0} MB ({:.0}%)",
            class,
            classes.bytes_of(class) as f64 / MB as f64,
            classes.fraction_of(class) * 100.0
        );
    }
    assert_eq!(
        classes.file_class.get(&9),
        Some(&IoClass::Checkpoint),
        "the state-dump file must classify as checkpoint traffic"
    );

    // Simulate: with write-behind, checkpoints overlap compute almost
    // entirely; with write-through the process stalls for every dump.
    println!("\nsimulated behind a 64 MB cache:");
    for (label, wt) in [("write-behind", false), ("write-through", true)] {
        let r = CampaignBuilder::buffered_mb(64)
            .configure(|c| {
                if wt {
                    c.cache.as_mut().unwrap().write_policy =
                        miller_core::WritePolicy::WriteThrough;
                }
            })
            .trace("checkpointer", trace.clone())
            .run();
        println!(
            "  {label:>14}: idle {:>7.1}s of {:>6.1}s wall ({:.1}% utilization)",
            r.idle_secs(),
            r.wall_secs(),
            r.utilization() * 100.0
        );
    }
    let _ = AppKind::Gcm;
}
