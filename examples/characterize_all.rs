//! Characterize all seven traced applications (a live rendering of
//! Tables 1–2 plus the §5 sequentiality/cycle/taxonomy analysis).
//!
//! ```text
//! cargo run --release --example characterize_all [-- --full]
//! ```
//!
//! By default runs at 1/8 scale; `--full` uses the paper's run lengths.

use miller_core::render::{num, pct, TextTable};
use miller_core::{paper_targets, AppKind, IoClass, Study, ALL_APPS};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full { 1 } else { 8 };

    let mut table = TextTable::new(&[
        "app", "MB/s (paper)", "IOs/s (paper)", "R/W (paper)", "seq", "same-size", "cycle(s)",
        "swap%", "ckpt%", "req%",
    ]);
    for kind in ALL_APPS {
        let c = Study::app(kind).seed(42).scale(scale).characterize();
        let p = paper_targets(kind);
        table.row(vec![
            kind.name().to_string(),
            format!("{} ({})", num(c.summary.mb_per_sec), num(p.mb_per_sec)),
            format!("{} ({})", num(c.summary.ios_per_sec), num(p.ios_per_sec)),
            format!("{} ({})", num(c.summary.rw_data_ratio), num(p.rw_data_ratio)),
            pct(c.sequentiality.sequential_fraction()),
            pct(c.sequentiality.same_size_fraction()),
            c.cycles
                .period_bins
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".to_string()),
            pct(c.classes.fraction_of(IoClass::DataSwap)),
            pct(c.classes.fraction_of(IoClass::Checkpoint)),
            pct(c.classes.fraction_of(IoClass::Required)),
        ]);
    }
    println!(
        "Per-application I/O characterization at 1/{scale} scale (paper values in parens)\n{}",
        table.render()
    );
    println!(
        "Note the §5.1 taxonomy: gcm and upw are pure required I/O; the\n\
         staging applications (venus, les, forma, ccm, bvi) are dominated by\n\
         data swapping, which is why their I/O recurs every cycle."
    );
    let _ = AppKind::Venus;
}
