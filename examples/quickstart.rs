//! Quickstart: characterize one application and run one buffering
//! simulation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use miller_core::{AppKind, CampaignBuilder, Study};

fn main() {
    // 1. Characterize venus the way §5 of the paper does.
    //    (scale(4) shortens the run 4x while preserving every rate.)
    let c = Study::app(AppKind::Venus).seed(42).scale(4).characterize();
    println!("== venus characterization ==");
    println!(
        "cpu {:.1}s | {:.1} MB/s | {:.0} IOs/s | avg request {:.0} KB | R/W {:.2}",
        c.summary.cpu_secs,
        c.summary.mb_per_sec,
        c.summary.ios_per_sec,
        c.summary.avg_io_kb,
        c.summary.rw_data_ratio
    );
    println!(
        "sequential {:.0}% | same-size {:.0}% | demand peak/mean {:.1}",
        c.sequentiality.sequential_fraction() * 100.0,
        c.sequentiality.same_size_fraction() * 100.0,
        c.burstiness.peak_to_mean
    );
    if let Some(period) = c.cycles.period_bins {
        println!(
            "dominant I/O cycle: {period} s (autocorrelation {:.2}, {} peaks)",
            c.cycles.strength, c.cycles.peaks
        );
    }

    // 2. Run the paper's flagship simulation: two venus copies sharing
    //    one CPU behind a buffered cache with read-ahead + write-behind.
    println!("\n== 2 x venus behind a 128 MB cache ==");
    let report = CampaignBuilder::buffered_mb(128)
        .app(AppKind::Venus)
        .app(AppKind::Venus)
        .seed(42)
        .scale(4)
        .run();
    println!(
        "wall {:.1}s | idle {:.1}s | utilization {:.1}% | cache hit ratio {:.1}%",
        report.wall_secs(),
        report.idle_secs(),
        report.utilization() * 100.0,
        report.cache.hit_ratio() * 100.0
    );
    println!(
        "disk: {} reads / {} writes, {:.1} MB moved",
        report.disk_totals.reads,
        report.disk_totals.writes,
        report.disk_totals.total_bytes() as f64 / (1024.0 * 1024.0)
    );
}
