//! End-to-end tests of the `mio` command-line tool: generate → analyze →
//! translate → simulate over real files.

use std::process::Command;

fn mio(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_mio"))
        .args(args)
        .output()
        .expect("run mio");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("mio-cli-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn help_and_apps_work() {
    let (out, _, ok) = mio(&["help"]);
    assert!(ok);
    assert!(out.contains("USAGE"));
    let (out, _, ok) = mio(&["apps"]);
    assert!(ok);
    for app in ["bvi", "ccm", "forma", "gcm", "les", "venus", "upw"] {
        assert!(out.contains(app), "apps output missing {app}");
    }
}

#[test]
fn unknown_commands_fail_cleanly() {
    let (_, err, ok) = mio(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
    let (_, err, ok) = mio(&["generate", "nonesuch"]);
    assert!(!ok);
    assert!(err.contains("unknown app"));
    let (_, err, ok) = mio(&["analyze", "/definitely/not/a/file"]);
    assert!(!ok);
    assert!(err.contains("not a file") || err.contains("No such file"));
}

#[test]
fn generate_analyze_roundtrip() {
    let path = tmp("ccm.trace");
    let (_, err, ok) = mio(&["generate", "ccm", "--scale", "16", "--seed", "9", "-o", &path]);
    assert!(ok, "generate failed: {err}");
    assert!(err.contains("generated ccm"));

    let (out, _, ok) = mio(&["analyze", &path]);
    assert!(ok);
    assert!(out.contains("MB/s"));
    assert!(out.contains("sequential"));
    assert!(out.contains("data-swap"));

    // Determinism: regenerating with the same seed produces an identical
    // file.
    let path2 = tmp("ccm2.trace");
    mio(&["generate", "ccm", "--scale", "16", "--seed", "9", "-o", &path2]);
    let a = std::fs::read(&path).unwrap();
    let b = std::fs::read(&path2).unwrap();
    assert_eq!(a, b, "same seed must produce byte-identical traces");
}

#[test]
fn translate_then_simulate() {
    let logical = tmp("upw.trace");
    let physical = tmp("upw-phys.trace");
    mio(&["generate", "upw", "--scale", "8", "-o", &logical]);
    let (_, err, ok) = mio(&["translate", &logical, "-o", &physical]);
    assert!(ok, "translate failed: {err}");
    assert!(err.contains("amplification"));

    let (out, err, ok) = mio(&["simulate", &logical, "--cache", "16"]);
    assert!(ok, "simulate failed: {err}");
    assert!(out.contains("utilization"));
    assert!(out.contains("I/Os"));

    // Policy and tier switches parse.
    let (out, _, ok) = mio(&["simulate", &logical, "--cache", "ssd", "--policy", "sprite"]);
    assert!(ok);
    assert!(out.contains("ssd tier"));
    let (out, _, ok) = mio(&["simulate", &logical, "--cache", "none", "--cpus", "2"]);
    assert!(ok);
    assert!(out.contains("2 CPUs"));
}
