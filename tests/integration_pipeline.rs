//! End-to-end pipeline integration: workload generation → procstat
//! collection → ASCII codec → analysis, across crates.

use miller_core::{
    analyze_sequentiality, classify_trace, paper_targets, read_trace, write_trace, AppKind,
    AppSummary, IoClass, Study, ALL_APPS,
};

#[test]
fn every_app_survives_the_full_gathering_pipeline() {
    for kind in ALL_APPS {
        // Generate through the emulated collection pipeline, then through
        // the compressed ASCII format, then analyze.
        let direct = Study::app(kind).seed(5).scale(8);
        let trace = direct.clone().through_procstat().trace();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap_or_else(|e| panic!("{}: encode: {e}", kind.name()));
        let decoded = read_trace(std::io::Cursor::new(buf))
            .unwrap_or_else(|e| panic!("{}: decode: {e}", kind.name()));
        assert_eq!(decoded, trace, "{}: pipeline must be lossless", kind.name());

        // Rates survive the pipeline (scaled run keeps rates).
        let summary = AppSummary::from_trace(&decoded);
        let target = paper_targets(kind);
        let rel = (summary.mb_per_sec - target.mb_per_sec).abs() / target.mb_per_sec.max(1e-9);
        assert!(
            rel < 0.15,
            "{}: {:.2} MB/s vs paper {:.2}",
            kind.name(),
            summary.mb_per_sec,
            target.mb_per_sec
        );
    }
}

#[test]
fn sequentiality_is_high_for_every_app() {
    // §5.2: supercomputer access patterns are "highly sequential and very
    // regular".
    for kind in ALL_APPS {
        let trace = Study::app(kind).seed(5).scale(8).trace();
        let seq = analyze_sequentiality(&trace);
        let threshold = if kind == AppKind::Venus { 0.6 } else { 0.9 };
        assert!(
            seq.sequential_fraction() > threshold,
            "{}: sequential fraction {:.2}",
            kind.name(),
            seq.sequential_fraction()
        );
        assert!(
            seq.modal_size_fraction() > 0.8,
            "{}: modal-size fraction {:.2}",
            kind.name(),
            seq.modal_size_fraction()
        );
    }
}

#[test]
fn taxonomy_separates_compulsory_from_staging_apps() {
    for kind in ALL_APPS {
        let trace = Study::app(kind).seed(5).scale(8).trace();
        let classes = classify_trace(&trace);
        let required = classes.fraction_of(IoClass::Required);
        match kind {
            AppKind::Gcm | AppKind::Upw => {
                assert!(
                    required > 0.99,
                    "{}: compulsory-only app must be pure required I/O ({required:.2})",
                    kind.name()
                );
            }
            _ => {
                assert!(
                    classes.fraction_of(IoClass::DataSwap) > 0.9,
                    "{}: staging app must be swap-dominated",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn cycles_are_detected_in_every_iterative_app() {
    for kind in [AppKind::Venus, AppKind::Les, AppKind::Forma, AppKind::Ccm, AppKind::Bvi] {
        let c = Study::app(kind).seed(5).scale(8).characterize();
        assert!(
            c.cycles.period_bins.is_some(),
            "{}: no cycle detected",
            kind.name()
        );
        assert!(
            c.cycles.strength > 0.2,
            "{}: cycle strength {:.2} too weak",
            kind.name(),
            c.cycles.strength
        );
        assert!(
            c.cycles.peak_spacing_cv < 0.6,
            "{}: peaks not evenly spaced (cv {:.2})",
            kind.name(),
            c.cycles.peak_spacing_cv
        );
    }
}

#[test]
fn burstiness_separates_staging_from_compulsory() {
    let venus = Study::app(AppKind::Venus).seed(5).scale(8).characterize();
    assert!(
        venus.burstiness.peak_to_mean > 1.5,
        "venus peak/mean {:.2} should be bursty",
        venus.burstiness.peak_to_mean
    );
    // gcm's demand is zero almost everywhere.
    let gcm = Study::app(AppKind::Gcm).seed(5).scale(8).characterize();
    assert!(
        gcm.burstiness.idle_fraction > 0.8,
        "gcm idle-bin fraction {:.2}",
        gcm.burstiness.idle_fraction
    );
}
