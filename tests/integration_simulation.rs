//! Cross-crate simulation integration: the paper's §6 shape results at
//! reduced scale, plus determinism of the whole stack.

use miller_core::{AppKind, CampaignBuilder, WritePolicy};

const SCALE: u32 = 8;

fn two_venus(mb: u64) -> miller_core::SimReport {
    CampaignBuilder::buffered_mb(mb)
        .app(AppKind::Venus)
        .app(AppKind::Venus)
        .seed(42)
        .scale(SCALE)
        .run()
}

#[test]
fn idle_time_falls_with_cache_size_with_a_knee() {
    // The Figure 8 shape: steep fall, then flat once the working sets
    // fit.
    let small = two_venus(4);
    let medium = two_venus(32);
    let large = two_venus(256);
    assert!(
        small.idle_secs() > medium.idle_secs(),
        "4 MB {:.1}s vs 32 MB {:.1}s",
        small.idle_secs(),
        medium.idle_secs()
    );
    assert!(
        medium.idle_secs() > large.idle_secs(),
        "32 MB {:.1}s vs 256 MB {:.1}s",
        medium.idle_secs(),
        large.idle_secs()
    );
    assert!(
        large.idle_secs() < small.idle_secs() * 0.2,
        "knee missing: {:.1}s -> {:.1}s",
        small.idle_secs(),
        large.idle_secs()
    );
}

#[test]
fn write_behind_is_the_load_bearing_policy() {
    // §6.2's 211 s -> 1 s claim, as a factor at reduced scale.
    let wb = CampaignBuilder::buffered_mb(128)
        .app(AppKind::Venus)
        .app(AppKind::Venus)
        .seed(42)
        .scale(SCALE)
        .run();
    let wt = CampaignBuilder::buffered_mb(128)
        .configure(|c| c.cache.as_mut().unwrap().write_policy = WritePolicy::WriteThrough)
        .app(AppKind::Venus)
        .app(AppKind::Venus)
        .seed(42)
        .scale(SCALE)
        .run();
    assert!(
        wt.idle_secs() > 5.0 * wb.idle_secs().max(0.1),
        "write-behind {:.1}s vs write-through {:.1}s",
        wb.idle_secs(),
        wt.idle_secs()
    );
}

#[test]
fn ssd_keeps_single_apps_nearly_fully_utilized() {
    // §6.3: with the SSD share, one I/O-intensive job keeps the CPU busy.
    // At 1/8 scale the one-time cold staging of the data set weighs 8x
    // heavier than at full scale, so the bars are scale-adjusted; the
    // full-scale numbers are produced by `repro-claims` (C2) and recorded
    // in EXPERIMENTS.md.
    for (kind, bar) in [
        (AppKind::Venus, 0.85),
        (AppKind::Ccm, 0.97),
        (AppKind::Les, 0.99),
        (AppKind::Gcm, 0.99),
    ] {
        let r = CampaignBuilder::ssd().app(kind).seed(42).scale(SCALE).run();
        assert!(
            r.utilization() > bar,
            "{} on SSD: utilization {:.3} (bar {bar})",
            kind.name(),
            r.utilization()
        );
    }
    // And bvi is the paper's (and our) exception: small requests pay FS
    // overhead per call, so it lags the others even on the SSD.
    let bvi = CampaignBuilder::ssd().app(AppKind::Bvi).seed(42).scale(SCALE).run();
    let venus = CampaignBuilder::ssd().app(AppKind::Venus).seed(42).scale(SCALE).run();
    assert!(
        bvi.utilization() < venus.utilization(),
        "bvi {:.3} should trail venus {:.3} on the SSD",
        bvi.utilization(),
        venus.utilization()
    );
}

#[test]
fn les_needs_no_cache_thanks_to_async_io() {
    // §6.2: les "ran with little idle time on both the SSD and
    // main-memory cache (because of explicit asynchronous I/O)".
    let r = CampaignBuilder::buffered_mb(4).app(AppKind::Les).seed(42).scale(SCALE).run();
    assert!(
        r.utilization() > 0.95,
        "les with a tiny cache: utilization {:.3}",
        r.utilization()
    );
    assert_eq!(r.processes[0].blocked_time.ticks(), 0, "async I/O never blocks");
}

#[test]
fn n_plus_one_rule_holds_for_disk_bound_apps() {
    // §2.2: n+1 jobs keep n processors busy. On our single CPU, a second
    // venus fills most of the first one's I/O stalls.
    let solo = CampaignBuilder::buffered_mb(16).app(AppKind::Venus).seed(42).scale(SCALE).run();
    let duo = two_venus(16);
    assert!(
        duo.utilization() > solo.utilization() * 1.2,
        "duo {:.3} vs solo {:.3}",
        duo.utilization(),
        solo.utilization()
    );
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let r = two_venus(32);
        (
            r.wall_end,
            r.cpu_busy,
            r.cpu_idle,
            r.cache.hit_blocks,
            r.disk_totals.total_bytes(),
            r.disk_write_series.bins().len(),
        )
    };
    assert_eq!(run(), run(), "same seed must give bit-identical results");
}

#[test]
fn disk_traffic_stays_bursty_despite_buffering() {
    // §6.2: "Read-ahead and write-behind did not have all the effects we
    // expected" — the request rate was not smoothed out.
    let r = two_venus(128);
    let writes = r.disk_write_series.rates_per_second();
    let mean = writes.iter().sum::<f64>() / writes.len().max(1) as f64;
    let peak = writes.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        peak > 2.0 * mean,
        "disk write traffic should remain bursty: peak {peak:.0} vs mean {mean:.0}"
    );
}

#[test]
fn mixed_workload_of_all_seven_apps_runs_clean() {
    let mut b = CampaignBuilder::buffered_mb(64).seed(1).scale(16);
    for kind in miller_core::ALL_APPS {
        b = b.app(kind);
    }
    let r = b.run();
    r.check_time_conservation();
    assert_eq!(r.processes.len(), 7);
    for p in &r.processes {
        assert!(p.ios_issued > 0, "{} issued no I/O", p.name);
    }
    // With seven jobs multiprogrammed, the CPU should rarely starve.
    assert!(r.utilization() > 0.9, "7-way mix utilization {:.3}", r.utilization());
}
