//! Whole-stack property tests: arbitrary well-formed application specs
//! survive generation, the collection pipeline, the codec, and analysis
//! with all invariants intact.

use miller_core::{
    analyze_sequentiality, read_trace, write_trace, AppSpec, AppSummary, CheckpointDef, CycleDef,
    FileDef, SweepOrder, Synchrony,
};
use proptest::prelude::*;
use sim_core::units::{KB, MB};
use sim_core::SimDuration;
use workload::{generate, LatencyModel};

fn arb_spec() -> impl Strategy<Value = AppSpec> {
    (
        1u32..4,                                        // files
        2u64..20,                                       // file MB
        1u32..12,                                       // cycles
        prop::sample::select(vec![32u64 * KB, 100_000, 512 * KB]), // io size
        0u64..30,                                       // cycle MB read
        0u64..20,                                       // cycle MB written
        any::<bool>(),                                  // interleaved?
        any::<bool>(),                                  // async?
        prop::option::of((1u64..8, 1u32..4)),           // checkpoint (MB, every)
        1u64..60,                                       // cpu seconds
    )
        .prop_map(
            |(nf, fmb, cycles, io, rmb, wmb, interleaved, async_io, ckpt, cpu)| AppSpec {
                name: "prop".into(),
                pid: 1,
                files: (0..nf)
                    .map(|i| FileDef::new(i + 1, fmb * MB, format!("f{i}")))
                    .collect(),
                cpu_time: SimDuration::from_secs(cpu),
                init_read: (MB, 128 * KB, 1),
                final_write: (MB, 128 * KB, 1),
                cycles,
                cycle: CycleDef {
                    read_bytes: rmb * MB,
                    write_bytes: wmb * MB,
                    read_io: io,
                    write_io: io,
                    order: if interleaved {
                        SweepOrder::Interleaved
                    } else {
                        SweepOrder::Sequential
                    },
                    interleave_run: 3,
                    sweep_cpu_frac: 0.5,
                },
                checkpoint: ckpt.map(|(mb, every)| CheckpointDef {
                    bytes: mb * MB,
                    io_size: 512 * KB,
                    every_cycles: every,
                    file_id: 99,
                }),
                sync: if async_io { Synchrony::Async } else { Synchrony::Sync },
                latency: LatencyModel::ymp_disk(),
                compute_jitter: 0.05,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn generated_traces_encode_decode_and_analyze(spec in arb_spec(), seed in 0u64..1000) {
        let trace = generate(&spec, seed);

        // Planned totals are exact.
        let read: u64 = trace.events()
            .filter(|e| e.dir == miller_core::Direction::Read)
            .map(|e| e.length).sum();
        let written: u64 = trace.events()
            .filter(|e| e.dir == miller_core::Direction::Write)
            .map(|e| e.length).sum();
        prop_assert_eq!(read, spec.planned_read_bytes());
        prop_assert_eq!(written, spec.planned_write_bytes());

        // Time order is a format precondition and must always hold.
        prop_assert!(trace.is_time_ordered());

        // Codec round trip.
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let decoded = read_trace(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(&decoded, &trace);

        // Determinism.
        prop_assert_eq!(generate(&spec, seed), trace);

        // Summary self-consistency.
        let s = AppSummary::from_trace(&decoded);
        prop_assert_eq!(s.num_ios as usize, decoded.io_count());
        let total = (s.reads.bytes + s.writes.bytes) as f64 / MB as f64;
        prop_assert!((total - s.total_io_mb).abs() < 1e-6);
        // CPU calibration within jitter tolerance.
        prop_assert!(
            (s.cpu_secs - spec.cpu_time.as_secs_f64()).abs()
                / spec.cpu_time.as_secs_f64() < 0.10,
            "cpu {} vs {}", s.cpu_secs, spec.cpu_time.as_secs_f64()
        );

        // Sequentiality: generated workloads are paper-shaped (highly
        // sequential per file) whenever there are at least a few I/Os.
        if decoded.io_count() > 20 {
            let seq = analyze_sequentiality(&decoded);
            prop_assert!(
                seq.modal_size_fraction() > 0.5,
                "modal fraction {}", seq.modal_size_fraction()
            );
        }
    }

    #[test]
    fn simulator_handles_arbitrary_generated_apps(spec in arb_spec(), seed in 0u64..100) {
        let trace = generate(&spec, seed);
        let r = miller_core::CampaignBuilder::buffered_mb(8)
            .trace("prop-app", trace.clone())
            .run();
        r.check_time_conservation();
        prop_assert_eq!(r.processes[0].ios_issued as usize, trace.io_count());
        prop_assert!(r.utilization() <= 1.0 + 1e-9);
        r.cache.check_invariants();
    }
}
