pub use miller_core::*;
