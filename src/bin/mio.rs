//! `mio` — command-line front end to the Miller-1991 reproduction.
//!
//! ```text
//! mio apps                                   list the calibrated applications
//! mio generate venus [--seed 42] [--scale 8] [-o venus.trace]
//! mio analyze venus.trace                    §5-style characterization
//! mio translate venus.trace [-o phys.trace]  logical -> physical expansion
//! mio simulate a.trace b.trace [--cache 128|ssd|none]
//!              [--policy behind|through|sprite] [--no-readahead] [--cpus 1]
//! mio serve --socket mio.sock [--workers N] ...    simulation-as-a-service
//! mio submit --socket mio.sock --fig8-point 32:4096 [--json out.json]
//! mio stats --socket mio.sock [--prom]             daemon metrics
//! ```
//!
//! Traces are the paper's compressed ASCII format; `-` means stdout.
//!
//! `serve` turns the one-shot repro workloads into a long-running
//! daemon (JSON lines over a Unix or TCP socket) with a warm trace
//! store, request dedup/coalescing, and fair queueing; `submit` is the
//! matching client. A served response is byte-identical to the
//! corresponding one-shot `repro-sim --json` output at any worker
//! count — CI `cmp`s them.

use miller_core::{
    analyze_sequentiality, classify_trace, detect_cycles, measure_amplification,
    measure_compression, paper_targets, read_trace, translate_to_physical, write_trace, AppKind,
    AppSummary, CacheConfig, CacheTier, FsConfig, FsLayout, IoClass, SimConfig, Simulation,
    Trace, WritePolicy, ALL_APPS,
};
use sim_core::units::MB;
use std::io::BufReader;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("mio: {msg}");
            eprintln!("run `mio help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") => {
            print!("{}", HELP);
            Ok(())
        }
        Some("apps") => cmd_apps(),
        Some("generate") => cmd_generate(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("translate") => cmd_translate(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

const HELP: &str = "\
mio — Miller 1991 supercomputer I/O reproduction

USAGE:
  mio apps
  mio generate <app> [--seed N] [--scale K] [-o FILE]
  mio analyze <FILE>
  mio translate <FILE> [-o FILE]
  mio simulate <FILE>... [--cache MB|ssd|none] [--policy behind|through|sprite]
               [--no-readahead] [--cpus N]
  mio serve  (--socket PATH | --tcp ADDR) [--workers N] [--max-inflight N]
             [--cache-cap N] [--drain-timeout SECS] [--threads N] [--shards N]
             [--trace-dir DIR] [--trace-mem-budget MB] [--profile PATH] [--progress]
  mio submit (--socket PATH | --tcp ADDR)
             (--fig8-point MB:BLOCK [--quick] | --campaign GxP [--shards N]
              | --stats | --shutdown)
             [--scale K] [--seed N] [--client NAME] [--json FILE]
  mio stats  (--socket PATH | --tcp ADDR) [--prom]
";

/// Pull the value following `flag` out of `args`, if present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

/// Pull a bare switch out of `args`.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn cmd_apps() -> Result<(), String> {
    println!("{:<7} {:>8} {:>9} {:>9} {:>7}", "app", "cpu(s)", "totIO(MB)", "MB/s", "R/W");
    for kind in ALL_APPS {
        let t = paper_targets(kind);
        println!(
            "{:<7} {:>8.0} {:>9.0} {:>9.2} {:>7.2}",
            kind.name(),
            t.cpu_secs,
            t.total_io_mb,
            t.mb_per_sec,
            t.rw_data_ratio
        );
    }
    Ok(())
}

fn cmd_generate(rest: &[String]) -> Result<(), String> {
    let mut args = rest.to_vec();
    let seed = take_flag(&mut args, "--seed")?
        .map(|v| v.parse::<u64>().map_err(|_| "bad --seed".to_string()))
        .transpose()?
        .unwrap_or(42);
    let scale = take_flag(&mut args, "--scale")?
        .map(|v| v.parse::<u32>().map_err(|_| "bad --scale".to_string()))
        .transpose()?
        .unwrap_or(1);
    let out = take_flag(&mut args, "-o")?;
    let name = args.first().ok_or("generate needs an application name")?;
    let kind = AppKind::from_name(name)
        .ok_or_else(|| format!("unknown app `{name}` (try `mio apps`)"))?;
    let trace = miller_core::app_trace(kind, 1, seed, miller_core::Scale(scale)).trace();
    write_out(&trace, out.as_deref())?;
    eprintln!(
        "generated {}: {} records, {:.1} MB of I/O",
        kind.name(),
        trace.io_count(),
        trace.total_bytes() as f64 / MB as f64
    );
    Ok(())
}

fn read_in(path: &str) -> Result<Trace, String> {
    let f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    read_trace(BufReader::new(f)).map_err(|e| format!("{path}: {e}"))
}

fn write_out(trace: &Trace, path: Option<&str>) -> Result<(), String> {
    match path {
        None | Some("-") => {
            let stdout = std::io::stdout();
            write_trace(trace, stdout.lock()).map_err(|e| e.to_string())
        }
        Some(p) => {
            let f = std::fs::File::create(p).map_err(|e| format!("{p}: {e}"))?;
            write_trace(trace, std::io::BufWriter::new(f)).map_err(|e| e.to_string())?;
            eprintln!("wrote {p}");
            Ok(())
        }
    }
}

fn cmd_analyze(rest: &[String]) -> Result<(), String> {
    let path = rest.first().ok_or("analyze needs a trace file")?;
    let trace = read_in(path)?;
    let s = AppSummary::from_trace(&trace);
    println!(
        "records {}  cpu {:.1}s  wall {:.1}s  data {:.1} MB  total I/O {:.1} MB",
        s.num_ios, s.cpu_secs, s.wall_secs, s.data_mb, s.total_io_mb
    );
    println!(
        "rates: {:.2} MB/s, {:.1} IOs/s  avg request {:.1} KB  R/W {:.2}  files {}",
        s.mb_per_sec, s.ios_per_sec, s.avg_io_kb, s.rw_data_ratio, s.files_touched
    );
    let seq = analyze_sequentiality(&trace);
    println!(
        "sequential {:.1}%  same-size {:.1}%  modal-size {:.1}%",
        seq.sequential_fraction() * 100.0,
        seq.same_size_fraction() * 100.0,
        seq.modal_size_fraction() * 100.0
    );
    let cycles = detect_cycles(&trace, sim_core::SimDuration::from_secs(1));
    match cycles.period_bins {
        Some(p) => println!(
            "cycles: period {p}s (strength {:.2}), {} peaks, spacing CV {:.2}",
            cycles.strength, cycles.peaks, cycles.peak_spacing_cv
        ),
        None => println!("cycles: none detected"),
    }
    let classes = classify_trace(&trace);
    println!(
        "taxonomy: required {:.1}%  checkpoint {:.1}%  data-swap {:.1}%",
        classes.fraction_of(IoClass::Required) * 100.0,
        classes.fraction_of(IoClass::Checkpoint) * 100.0,
        classes.fraction_of(IoClass::DataSwap) * 100.0
    );
    let comp = measure_compression(&trace).map_err(|e| e.to_string())?;
    println!(
        "format: {:.1} bytes/record ({:.0}% smaller than fixed binary)",
        comp.bytes_per_record(),
        comp.savings_vs_binary() * 100.0
    );
    Ok(())
}

fn cmd_translate(rest: &[String]) -> Result<(), String> {
    let mut args = rest.to_vec();
    let out = take_flag(&mut args, "-o")?;
    let path = args.first().ok_or("translate needs a trace file")?;
    let trace = read_in(path)?;
    let mut layout = FsLayout::new(FsConfig::default());
    let mixed = translate_to_physical(&trace, &mut layout);
    let amp = measure_amplification(&mixed);
    write_out(&mixed, out.as_deref())?;
    eprintln!(
        "translated: {} records ({:.3}x data amplification, {:.2}% metadata)",
        mixed.io_count(),
        amp.data_amplification(),
        amp.metadata_fraction() * 100.0
    );
    Ok(())
}

fn cmd_simulate(rest: &[String]) -> Result<(), String> {
    let mut args = rest.to_vec();
    let cache = take_flag(&mut args, "--cache")?.unwrap_or_else(|| "32".to_string());
    let policy = take_flag(&mut args, "--policy")?.unwrap_or_else(|| "behind".to_string());
    let cpus = take_flag(&mut args, "--cpus")?
        .map(|v| v.parse::<usize>().map_err(|_| "bad --cpus".to_string()))
        .transpose()?
        .unwrap_or(1);
    let no_ra = take_switch(&mut args, "--no-readahead");
    if args.is_empty() {
        return Err("simulate needs at least one trace file".into());
    }

    let mut config = match cache.as_str() {
        "none" => SimConfig::uncached(),
        "ssd" => SimConfig::ssd(),
        mb => {
            let mb: u64 = mb.parse().map_err(|_| "bad --cache (MB|ssd|none)".to_string())?;
            SimConfig { cache: Some(CacheConfig::buffered(mb * MB)), ..Default::default() }
        }
    };
    config.n_cpus = cpus;
    if let Some(c) = config.cache.as_mut() {
        c.read_ahead = !no_ra;
        c.write_policy = match policy.as_str() {
            "behind" => WritePolicy::WriteBehind,
            "through" => WritePolicy::WriteThrough,
            "sprite" => WritePolicy::sprite(),
            other => return Err(format!("unknown --policy `{other}`")),
        };
    }
    let tier = config.tier;
    let mut sim = Simulation::new(config);
    for (i, path) in args.iter().enumerate() {
        let trace = read_in(path)?;
        sim.add_process((i + 1) as u32, path.clone(), &trace)
            .map_err(|e| format!("{path}: {e}"))?;
    }
    let r = sim.run();
    println!(
        "wall {:.1}s  idle {:.1}s  utilization {:.1}%  ({} CPU{}, cache {}{})",
        r.wall_secs(),
        r.idle_secs(),
        r.utilization() * 100.0,
        r.n_cpus,
        if r.n_cpus == 1 { "" } else { "s" },
        cache,
        if tier == CacheTier::Ssd { " [ssd tier]" } else { "" },
    );
    println!(
        "cache: hit ratio {:.1}%  RA hits {}  dirty evictions {}",
        r.cache.hit_ratio() * 100.0,
        r.cache.readahead_hit_blocks,
        r.cache.dirty_evictions
    );
    println!(
        "disks: {} reads / {} writes, {:.1} MB total",
        r.disk_totals.reads,
        r.disk_totals.writes,
        r.disk_totals.total_bytes() as f64 / MB as f64
    );
    for p in &r.processes {
        println!(
            "  {}: cpu {:.1}s  blocked {:.1}s  {} I/Os  finished at {:.1}s",
            p.name,
            p.cpu_used.as_secs_f64(),
            p.blocked_time.as_secs_f64(),
            p.ios_issued,
            p.finished_at.as_secs_f64()
        );
    }
    Ok(())
}

/// Parse the `--socket`/`--tcp` pair shared by `serve` and `submit`.
fn take_endpoint(args: &mut Vec<String>) -> Result<serve::Endpoint, String> {
    let socket = take_flag(args, "--socket")?;
    let tcp = take_flag(args, "--tcp")?;
    match (socket, tcp) {
        (Some(_), Some(_)) => Err("--socket and --tcp are mutually exclusive".into()),
        (Some(p), None) => Ok(serve::Endpoint::Unix(p.into())),
        (None, Some(a)) => Ok(serve::Endpoint::Tcp(a)),
        (None, None) => Err("need --socket PATH or --tcp ADDR".into()),
    }
}

fn parse_count(v: Option<String>, flag: &str, default: usize) -> Result<usize, String> {
    v.map(|s| s.parse::<usize>().map_err(|_| format!("bad {flag}")))
        .transpose()
        .map(|n| n.unwrap_or(default))
}

fn cmd_serve(rest: &[String]) -> Result<(), String> {
    let mut args = rest.to_vec();
    // Standard repro flags first: --threads/--shards/--trace-dir/
    // --trace-mem-budget/--progress/--profile[-capacity] all apply to
    // the daemon exactly as they do to the one-shot binaries.
    let profile = experiments::apply_standard_flags(&mut args)?;
    let endpoint = take_endpoint(&mut args).map_err(|e| format!("serve: {e}"))?;
    let workers =
        parse_count(take_flag(&mut args, "--workers")?, "--workers", experiments::thread_count())?;
    let max_inflight = parse_count(take_flag(&mut args, "--max-inflight")?, "--max-inflight", 256)?;
    let cache_cap = parse_count(take_flag(&mut args, "--cache-cap")?, "--cache-cap", 512)?;
    let drain_secs = parse_count(take_flag(&mut args, "--drain-timeout")?, "--drain-timeout", 30)?;
    if let Some(stray) = args.first() {
        return Err(format!("serve: unexpected argument `{stray}`"));
    }
    if workers == 0 {
        return Err("serve: --workers must be at least 1".into());
    }
    serve::serve(&serve::ServeOptions {
        endpoint,
        engine: serve::EngineConfig {
            workers,
            max_inflight,
            result_cache: cache_cap,
            store: experiments::StoreConfig::from_env(),
        },
        drain_timeout: std::time::Duration::from_secs(drain_secs as u64),
    })?;
    // Part of graceful shutdown: the flight recorder flushes after the
    // drain, so a SIGINT'd daemon still leaves a complete timeline.
    if let Some(path) = &profile {
        obs::finish_profile(path);
    }
    Ok(())
}

/// Build the request body from the `submit` flags. `--quick` mirrors
/// `repro-sim --quick` (scale 8); campaign scale defaults to 16 like
/// `CampaignSpec::datacenter`, so served responses line up with the
/// one-shot binary byte for byte.
fn submit_body(args: &mut Vec<String>) -> Result<serve::RequestBody, String> {
    let quick = take_switch(args, "--quick");
    let scale = take_flag(args, "--scale")?
        .map(|v| v.parse::<u32>().map_err(|_| "bad --scale".to_string()))
        .transpose()?;
    let seed = take_flag(args, "--seed")?
        .map(|v| v.parse::<u64>().map_err(|_| "bad --seed".to_string()))
        .transpose()?
        .unwrap_or(42);
    let shards = parse_count(take_flag(args, "--shards")?, "--shards", 1)?;
    let fig8 = take_flag(args, "--fig8-point")?;
    let campaign = take_flag(args, "--campaign")?;
    let stats = take_switch(args, "--stats");
    let shutdown = take_switch(args, "--shutdown");
    let chosen =
        [fig8.is_some(), campaign.is_some(), stats, shutdown].iter().filter(|b| **b).count();
    if chosen != 1 {
        return Err(
            "submit needs exactly one of --fig8-point, --campaign, --stats, --shutdown".into()
        );
    }
    if let Some(raw) = fig8 {
        let (mb, block) = raw
            .split_once(':')
            .ok_or_else(|| format!("--fig8-point wants MB:BLOCK, got `{raw}`"))?;
        let cache_mb: u64 = mb.trim().parse().map_err(|_| "bad --fig8-point cache MB")?;
        let block: u64 = block.trim().parse().map_err(|_| "bad --fig8-point block size")?;
        return Ok(serve::RequestBody::Fig8Point(serve::Fig8PointSpec {
            cache_mb,
            block,
            scale: scale.unwrap_or(if quick { 8 } else { 1 }),
            seed,
        }));
    }
    if let Some(raw) = campaign {
        let (groups, procs) = raw
            .split_once(['x', 'X'])
            .ok_or_else(|| format!("--campaign wants GROUPSxPROCS, got `{raw}`"))?;
        let groups: usize = groups.trim().parse().map_err(|_| "bad --campaign group count")?;
        let procs: usize = procs.trim().parse().map_err(|_| "bad --campaign process count")?;
        let mut spec = serve::CampaignPointSpec::datacenter(groups, procs, shards);
        if let Some(k) = scale {
            spec.scale = k;
        }
        spec.seed = seed;
        return Ok(serve::RequestBody::Campaign(spec));
    }
    if stats {
        return Ok(serve::RequestBody::Stats);
    }
    Ok(serve::RequestBody::Shutdown)
}

fn cmd_submit(rest: &[String]) -> Result<(), String> {
    let mut args = rest.to_vec();
    let endpoint = take_endpoint(&mut args).map_err(|e| format!("submit: {e}"))?;
    let json = take_flag(&mut args, "--json")?;
    let client = take_flag(&mut args, "--client")?;
    let body = submit_body(&mut args)?;
    if let Some(stray) = args.first() {
        return Err(format!("submit: unexpected argument `{stray}`"));
    }
    let resp = serve::submit_once(&endpoint, &serve::Request { id: 1, client, body })?;
    match resp.event.as_str() {
        "done" => {
            if resp.cached == Some(true) {
                eprintln!("mio submit: served from warm state (cache/coalesce)");
            }
            match resp.result {
                Some(serde::Value::Null) | None => {
                    eprintln!("mio submit: ok");
                }
                Some(value) => {
                    // Same bytes as `repro-sim --json`: pretty-printed,
                    // no trailing newline, so CI can `cmp` the files.
                    let text = serde_json::to_string_pretty(&value)
                        .map_err(|e| format!("serialize result: {e}"))?;
                    match json.as_deref() {
                        None | Some("-") => println!("{text}"),
                        Some(path) => {
                            std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
                            eprintln!("wrote {path}");
                        }
                    }
                }
            }
            Ok(())
        }
        "error" => Err(resp.error.unwrap_or_else(|| "server reported an error".into())),
        other => Err(format!("unexpected terminal event `{other}`")),
    }
}

/// `mio stats`: fetch the daemon's statistics — deterministic JSON by
/// default, or the Prometheus text exposition of its RED metrics with
/// `--prom` (queue-wait and service-time histograms, per-client request
/// counters, cache/coalesce ratios).
fn cmd_stats(rest: &[String]) -> Result<(), String> {
    let mut args = rest.to_vec();
    let endpoint = take_endpoint(&mut args).map_err(|e| format!("stats: {e}"))?;
    let prom = take_switch(&mut args, "--prom");
    if let Some(stray) = args.first() {
        return Err(format!("stats: unexpected argument `{stray}`"));
    }
    let body = if prom { serve::RequestBody::Metrics } else { serve::RequestBody::Stats };
    let resp = serve::submit_once(&endpoint, &serve::Request { id: 1, client: None, body })?;
    match resp.event.as_str() {
        "done" => match resp.result {
            // The Metrics payload is the exposition body itself; print
            // it verbatim (it is newline-terminated).
            Some(serde::Value::Str(text)) => {
                print!("{text}");
                Ok(())
            }
            Some(value) => {
                let text = serde_json::to_string_pretty(&value)
                    .map_err(|e| format!("serialize stats: {e}"))?;
                println!("{text}");
                Ok(())
            }
            None => Err("stats response carried no payload".into()),
        },
        "error" => Err(resp.error.unwrap_or_else(|| "server reported an error".into())),
        other => Err(format!("unexpected terminal event `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn take_flag_extracts_value_and_removes_both_tokens() {
        let mut args = argv("venus --seed 9 -o out.trace");
        assert_eq!(take_flag(&mut args, "--seed").unwrap(), Some("9".into()));
        assert_eq!(take_flag(&mut args, "-o").unwrap(), Some("out.trace".into()));
        assert_eq!(args, argv("venus"));
        assert_eq!(take_flag(&mut args, "--scale").unwrap(), None);
    }

    #[test]
    fn take_flag_rejects_missing_value() {
        let mut args = argv("venus --seed");
        assert!(take_flag(&mut args, "--seed").is_err());
    }

    #[test]
    fn take_switch_removes_token() {
        let mut args = argv("a.trace --no-readahead --cache 16");
        assert!(take_switch(&mut args, "--no-readahead"));
        assert!(!take_switch(&mut args, "--no-readahead"));
        assert_eq!(args, argv("a.trace --cache 16"));
    }

    #[test]
    fn run_dispatches_unknown_commands_to_error() {
        assert!(run(&argv("bogus")).is_err());
        assert!(run(&argv("help")).is_ok());
        assert!(run(&argv("apps")).is_ok());
    }

    #[test]
    fn stats_requires_an_endpoint_and_rejects_strays() {
        assert!(run(&argv("stats")).is_err());
        assert!(run(&argv("stats --prom")).is_err());
        assert!(run(&argv("stats --socket a.sock --bogus")).is_err());
    }

    #[test]
    fn take_endpoint_requires_exactly_one_transport() {
        assert!(take_endpoint(&mut argv("--workers 2")).is_err());
        assert!(take_endpoint(&mut argv("--socket a.sock --tcp 127.0.0.1:1")).is_err());
        assert_eq!(
            take_endpoint(&mut argv("--socket a.sock")).unwrap(),
            serve::Endpoint::Unix("a.sock".into())
        );
        assert_eq!(
            take_endpoint(&mut argv("--tcp 127.0.0.1:7070")).unwrap(),
            serve::Endpoint::Tcp("127.0.0.1:7070".into())
        );
    }

    #[test]
    fn submit_body_matches_the_one_shot_binaries() {
        // --quick must land on repro-sim's Scale(8); campaign defaults
        // must be CampaignSpec::datacenter's (scale 16, seed 42).
        let body = submit_body(&mut argv("--fig8-point 32:4096 --quick")).unwrap();
        assert_eq!(
            body,
            serve::RequestBody::Fig8Point(serve::Fig8PointSpec {
                cache_mb: 32,
                block: 4096,
                scale: 8,
                seed: 42,
            })
        );
        let body = submit_body(&mut argv("--campaign 24x16 --shards 4")).unwrap();
        assert_eq!(
            body,
            serve::RequestBody::Campaign(serve::CampaignPointSpec::datacenter(24, 16, 4))
        );
        assert_eq!(submit_body(&mut argv("--stats")).unwrap(), serve::RequestBody::Stats);
        assert_eq!(submit_body(&mut argv("--shutdown")).unwrap(), serve::RequestBody::Shutdown);
    }

    #[test]
    fn submit_body_rejects_ambiguous_or_missing_requests() {
        assert!(submit_body(&mut argv("")).is_err());
        assert!(submit_body(&mut argv("--stats --shutdown")).is_err());
        assert!(submit_body(&mut argv("--fig8-point 32x4096")).is_err());
        assert!(submit_body(&mut argv("--campaign 24:16")).is_err());
    }
}
