//! `mio` — command-line front end to the Miller-1991 reproduction.
//!
//! ```text
//! mio apps                                   list the calibrated applications
//! mio generate venus [--seed 42] [--scale 8] [-o venus.trace]
//! mio analyze venus.trace                    §5-style characterization
//! mio translate venus.trace [-o phys.trace]  logical -> physical expansion
//! mio simulate a.trace b.trace [--cache 128|ssd|none]
//!              [--policy behind|through|sprite] [--no-readahead] [--cpus 1]
//! ```
//!
//! Traces are the paper's compressed ASCII format; `-` means stdout.

use miller_core::{
    analyze_sequentiality, classify_trace, detect_cycles, measure_amplification,
    measure_compression, paper_targets, read_trace, translate_to_physical, write_trace, AppKind,
    AppSummary, CacheConfig, CacheTier, FsConfig, FsLayout, IoClass, SimConfig, Simulation,
    Trace, WritePolicy, ALL_APPS,
};
use sim_core::units::MB;
use std::io::BufReader;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("mio: {msg}");
            eprintln!("run `mio help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") => {
            print!("{}", HELP);
            Ok(())
        }
        Some("apps") => cmd_apps(),
        Some("generate") => cmd_generate(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("translate") => cmd_translate(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

const HELP: &str = "\
mio — Miller 1991 supercomputer I/O reproduction

USAGE:
  mio apps
  mio generate <app> [--seed N] [--scale K] [-o FILE]
  mio analyze <FILE>
  mio translate <FILE> [-o FILE]
  mio simulate <FILE>... [--cache MB|ssd|none] [--policy behind|through|sprite]
               [--no-readahead] [--cpus N]
";

/// Pull the value following `flag` out of `args`, if present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

/// Pull a bare switch out of `args`.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn cmd_apps() -> Result<(), String> {
    println!("{:<7} {:>8} {:>9} {:>9} {:>7}", "app", "cpu(s)", "totIO(MB)", "MB/s", "R/W");
    for kind in ALL_APPS {
        let t = paper_targets(kind);
        println!(
            "{:<7} {:>8.0} {:>9.0} {:>9.2} {:>7.2}",
            kind.name(),
            t.cpu_secs,
            t.total_io_mb,
            t.mb_per_sec,
            t.rw_data_ratio
        );
    }
    Ok(())
}

fn cmd_generate(rest: &[String]) -> Result<(), String> {
    let mut args = rest.to_vec();
    let seed = take_flag(&mut args, "--seed")?
        .map(|v| v.parse::<u64>().map_err(|_| "bad --seed".to_string()))
        .transpose()?
        .unwrap_or(42);
    let scale = take_flag(&mut args, "--scale")?
        .map(|v| v.parse::<u32>().map_err(|_| "bad --scale".to_string()))
        .transpose()?
        .unwrap_or(1);
    let out = take_flag(&mut args, "-o")?;
    let name = args.first().ok_or("generate needs an application name")?;
    let kind = AppKind::from_name(name)
        .ok_or_else(|| format!("unknown app `{name}` (try `mio apps`)"))?;
    let trace = miller_core::app_trace(kind, 1, seed, miller_core::Scale(scale)).trace();
    write_out(&trace, out.as_deref())?;
    eprintln!(
        "generated {}: {} records, {:.1} MB of I/O",
        kind.name(),
        trace.io_count(),
        trace.total_bytes() as f64 / MB as f64
    );
    Ok(())
}

fn read_in(path: &str) -> Result<Trace, String> {
    let f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    read_trace(BufReader::new(f)).map_err(|e| format!("{path}: {e}"))
}

fn write_out(trace: &Trace, path: Option<&str>) -> Result<(), String> {
    match path {
        None | Some("-") => {
            let stdout = std::io::stdout();
            write_trace(trace, stdout.lock()).map_err(|e| e.to_string())
        }
        Some(p) => {
            let f = std::fs::File::create(p).map_err(|e| format!("{p}: {e}"))?;
            write_trace(trace, std::io::BufWriter::new(f)).map_err(|e| e.to_string())?;
            eprintln!("wrote {p}");
            Ok(())
        }
    }
}

fn cmd_analyze(rest: &[String]) -> Result<(), String> {
    let path = rest.first().ok_or("analyze needs a trace file")?;
    let trace = read_in(path)?;
    let s = AppSummary::from_trace(&trace);
    println!(
        "records {}  cpu {:.1}s  wall {:.1}s  data {:.1} MB  total I/O {:.1} MB",
        s.num_ios, s.cpu_secs, s.wall_secs, s.data_mb, s.total_io_mb
    );
    println!(
        "rates: {:.2} MB/s, {:.1} IOs/s  avg request {:.1} KB  R/W {:.2}  files {}",
        s.mb_per_sec, s.ios_per_sec, s.avg_io_kb, s.rw_data_ratio, s.files_touched
    );
    let seq = analyze_sequentiality(&trace);
    println!(
        "sequential {:.1}%  same-size {:.1}%  modal-size {:.1}%",
        seq.sequential_fraction() * 100.0,
        seq.same_size_fraction() * 100.0,
        seq.modal_size_fraction() * 100.0
    );
    let cycles = detect_cycles(&trace, sim_core::SimDuration::from_secs(1));
    match cycles.period_bins {
        Some(p) => println!(
            "cycles: period {p}s (strength {:.2}), {} peaks, spacing CV {:.2}",
            cycles.strength, cycles.peaks, cycles.peak_spacing_cv
        ),
        None => println!("cycles: none detected"),
    }
    let classes = classify_trace(&trace);
    println!(
        "taxonomy: required {:.1}%  checkpoint {:.1}%  data-swap {:.1}%",
        classes.fraction_of(IoClass::Required) * 100.0,
        classes.fraction_of(IoClass::Checkpoint) * 100.0,
        classes.fraction_of(IoClass::DataSwap) * 100.0
    );
    let comp = measure_compression(&trace).map_err(|e| e.to_string())?;
    println!(
        "format: {:.1} bytes/record ({:.0}% smaller than fixed binary)",
        comp.bytes_per_record(),
        comp.savings_vs_binary() * 100.0
    );
    Ok(())
}

fn cmd_translate(rest: &[String]) -> Result<(), String> {
    let mut args = rest.to_vec();
    let out = take_flag(&mut args, "-o")?;
    let path = args.first().ok_or("translate needs a trace file")?;
    let trace = read_in(path)?;
    let mut layout = FsLayout::new(FsConfig::default());
    let mixed = translate_to_physical(&trace, &mut layout);
    let amp = measure_amplification(&mixed);
    write_out(&mixed, out.as_deref())?;
    eprintln!(
        "translated: {} records ({:.3}x data amplification, {:.2}% metadata)",
        mixed.io_count(),
        amp.data_amplification(),
        amp.metadata_fraction() * 100.0
    );
    Ok(())
}

fn cmd_simulate(rest: &[String]) -> Result<(), String> {
    let mut args = rest.to_vec();
    let cache = take_flag(&mut args, "--cache")?.unwrap_or_else(|| "32".to_string());
    let policy = take_flag(&mut args, "--policy")?.unwrap_or_else(|| "behind".to_string());
    let cpus = take_flag(&mut args, "--cpus")?
        .map(|v| v.parse::<usize>().map_err(|_| "bad --cpus".to_string()))
        .transpose()?
        .unwrap_or(1);
    let no_ra = take_switch(&mut args, "--no-readahead");
    if args.is_empty() {
        return Err("simulate needs at least one trace file".into());
    }

    let mut config = match cache.as_str() {
        "none" => SimConfig::uncached(),
        "ssd" => SimConfig::ssd(),
        mb => {
            let mb: u64 = mb.parse().map_err(|_| "bad --cache (MB|ssd|none)".to_string())?;
            SimConfig { cache: Some(CacheConfig::buffered(mb * MB)), ..Default::default() }
        }
    };
    config.n_cpus = cpus;
    if let Some(c) = config.cache.as_mut() {
        c.read_ahead = !no_ra;
        c.write_policy = match policy.as_str() {
            "behind" => WritePolicy::WriteBehind,
            "through" => WritePolicy::WriteThrough,
            "sprite" => WritePolicy::sprite(),
            other => return Err(format!("unknown --policy `{other}`")),
        };
    }
    let tier = config.tier;
    let mut sim = Simulation::new(config);
    for (i, path) in args.iter().enumerate() {
        let trace = read_in(path)?;
        sim.add_process((i + 1) as u32, path.clone(), &trace)
            .map_err(|e| format!("{path}: {e}"))?;
    }
    let r = sim.run();
    println!(
        "wall {:.1}s  idle {:.1}s  utilization {:.1}%  ({} CPU{}, cache {}{})",
        r.wall_secs(),
        r.idle_secs(),
        r.utilization() * 100.0,
        r.n_cpus,
        if r.n_cpus == 1 { "" } else { "s" },
        cache,
        if tier == CacheTier::Ssd { " [ssd tier]" } else { "" },
    );
    println!(
        "cache: hit ratio {:.1}%  RA hits {}  dirty evictions {}",
        r.cache.hit_ratio() * 100.0,
        r.cache.readahead_hit_blocks,
        r.cache.dirty_evictions
    );
    println!(
        "disks: {} reads / {} writes, {:.1} MB total",
        r.disk_totals.reads,
        r.disk_totals.writes,
        r.disk_totals.total_bytes() as f64 / MB as f64
    );
    for p in &r.processes {
        println!(
            "  {}: cpu {:.1}s  blocked {:.1}s  {} I/Os  finished at {:.1}s",
            p.name,
            p.cpu_used.as_secs_f64(),
            p.blocked_time.as_secs_f64(),
            p.ios_issued,
            p.finished_at.as_secs_f64()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn take_flag_extracts_value_and_removes_both_tokens() {
        let mut args = argv("venus --seed 9 -o out.trace");
        assert_eq!(take_flag(&mut args, "--seed").unwrap(), Some("9".into()));
        assert_eq!(take_flag(&mut args, "-o").unwrap(), Some("out.trace".into()));
        assert_eq!(args, argv("venus"));
        assert_eq!(take_flag(&mut args, "--scale").unwrap(), None);
    }

    #[test]
    fn take_flag_rejects_missing_value() {
        let mut args = argv("venus --seed");
        assert!(take_flag(&mut args, "--seed").is_err());
    }

    #[test]
    fn take_switch_removes_token() {
        let mut args = argv("a.trace --no-readahead --cache 16");
        assert!(take_switch(&mut args, "--no-readahead"));
        assert!(!take_switch(&mut args, "--no-readahead"));
        assert_eq!(args, argv("a.trace --cache 16"));
    }

    #[test]
    fn run_dispatches_unknown_commands_to_error() {
        assert!(run(&argv("bogus")).is_err());
        assert!(run(&argv("help")).is_ok());
        assert!(run(&argv("apps")).is_ok());
    }
}
